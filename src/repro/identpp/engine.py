"""The query engine: caching + coalescing layer over :class:`QueryClient`.

The paper's flow-setup cost is dominated by step 3 of §2: the
controller "requests additional information from both the source and
the destination end-hosts".  Issued naively that is two fresh
synchronous round-trips per punt, so a popular server's daemon is
re-interrogated once per flow and a daemon-less legacy host (§4,
"Incremental Benefit") burns a full query timeout on every connection
attempt.  :class:`QueryEngine` sits between the controller and its
:class:`~repro.identpp.client.QueryClient` and removes that redundancy
three ways:

* an **endpoint response cache** keyed on *(host, role, key-set)* plus
  the flow's proto and target-side port (the part of the 5-tuple the
  answering socket is matched on), with a TTL and explicit
  invalidation — a daemon publishing new runtime keys, loading
  configuration, being spoofed, its host being compromised, or its
  host's socket table changing owners all push an invalidation through
  :meth:`IdentPPDaemon.add_invalidation_listener`, so stale answers
  never outlive the event that staled them;
* **in-flight coalescing** — a cached entry whose answer has not
  "arrived" yet (its ``ready_at`` is still in the simulated future)
  represents an outstanding query; concurrent punts needing the same
  endpoint's answer share it, each charged only the *remaining* wait,
  instead of issuing N identical round-trips;
* a **negative cache** — a query that timed out (no daemon, or no path
  to the host) is remembered for ``negative_ttl``, so a legacy host
  costs one timeout per TTL instead of one per flow.  Negative entries
  self-heal: a daemon appearing on the host, or any topology mutation
  (for unreachable hosts), invalidates them on the next lookup.

Two correctness guards bound what the cache may share:

* **Interception is per-query.**  A query carrying on-path
  interceptors bypasses the cache entirely: an interceptor's decision
  to answer, decline or augment is made per flow (§3.4), so serving a
  warm entry would silently disable the interception mechanism and
  replay another flow's augmented sections.
* **Flow-scoped answers stay flow-scoped.**  Source-side answers, and
  any destination answer the daemon reports as not shareable
  (:meth:`IdentPPDaemon.answer_is_shareable`: flow-specific runtime
  pairs, or a connected per-connection worker socket), are served only
  to re-punts of the *same* flow — one flow's identity is never
  attributed to another.  Only a listener's flow-independent answer
  (the hot-server case) is shared across flows.

A TTL of ``0`` disables the engine entirely (every call passes straight
through to the client), which is the default wiring so existing
scenario timelines are unchanged; benchmarks and production configs
opt in via ``ControllerConfig.query_cache_ttl``.

**The push identity plane** (``push=True``) inverts the dataflow for
*subscribed* hosts: instead of pulling on every miss and aging answers
out by TTL, the engine registers standing interest with the host's
daemon (wire-v2 SUBSCRIBE, capability-negotiated — a legacy daemon
refuses and the pull path above applies untouched) and keeps the host's
shareable destination answers in a **resident store**.  Resident
answers are authoritative-until-delta: they never expire, punts on them
are served synchronously with **zero** daemon round-trips, and when the
daemon pushes a serial-numbered :class:`IdentDelta` the engine drops
and proactively *re-primes* each resident answer off the punt path — so
convergence after an identity change costs the first post-change punt
nothing, where the TTL plane charges it a full round trip.
Unsubscribed hosts keep the PR 5 semantics above exactly.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from typing import Callable

from repro.identpp.client import (
    QueryClient,
    QueryInterceptor,
    QueryOutcome,
    per_role_interceptors,
)
from repro.identpp.flowspec import FlowSpec
from repro.identpp.wire import (
    CAP_SUBSCRIBE,
    IdentDelta,
    IdentQuery,
    IdentSubscribe,
    ROLE_DESTINATION,
    ROLE_SOURCE,
)
from repro.netsim.events import Future

#: Default TTL benchmarks/workloads use when they enable the engine.
DEFAULT_QUERY_CACHE_TTL = 30.0

#: Default idle window after which a subscribed host is demoted back to
#: the pull plane by the lifecycle sweeper.
DEFAULT_PUSH_IDLE_DEMOTE = 30.0


@dataclass
class CacheEntry:
    """One cached endpoint answer (positive or negative).

    ``ready_at`` is when the underlying query completes: before it the
    entry is *in flight* (lookups coalesce onto it, charged the
    remaining wait), after it the entry is a plain cache hit until
    ``expires_at``.
    """

    key: tuple
    host_ip: str
    outcome: QueryOutcome
    ready_at: float
    expires_at: float
    negative: bool = False
    #: Flow-scoped entries answer only re-punts of the exact flow that
    #: filled them (source-side answers, and destination answers the
    #: daemon marked not shareable) — a different flow must query fresh.
    flow_scoped: bool = False
    #: Negative entries for *unreachable* hosts are keyed on the
    #: topology epoch: any connectivity change may have restored a path,
    #: so the entry must be re-proven.
    unreachable: bool = False
    topology_epoch: int = -1
    hits: int = 0
    #: Continuations parked on an in-flight entry by the async query
    #: path: ``(future, prepared outcome)`` pairs completed together by
    #: one arrival event when the underlying answer lands at
    #: ``ready_at`` — N coalesced punts cost one event, not N timers.
    waiters: list = field(default_factory=list)
    #: Whether the shared arrival event for :attr:`waiters` is armed.
    #: Stays ``True`` after it fires: past ``ready_at`` lookups are
    #: plain hits and never enlist.
    arrival_armed: bool = False


@dataclass
class PushSubscription:
    """One standing subscription: host, daemon ref, delta position.

    ``daemon`` is a strong reference to the exact object the engine
    registered on (host-ip → daemon-ref keying, like the invalidation
    subscriptions): a *replaced* daemon on the same IP compares
    non-identical, so closing always reaches the object that holds our
    sink and can never strand a subscription on a dead daemon.
    ``serial`` is the last delta serial applied; a gap against the
    daemon's serial after failover means deltas were missed.
    """

    host_ip: str
    daemon: object
    serial: int
    subscribed_at: float
    last_hit: float
    from_node: object = None
    deltas_applied: int = 0
    duplicate_deltas: int = 0


class QueryEngine:
    """Caching, coalescing front-end for one controller's ident++ queries."""

    def __init__(
        self,
        client: QueryClient,
        *,
        ttl: float = 0.0,
        negative_ttl: Optional[float] = None,
        name: str = "query-engine",
        push: bool = False,
        push_idle_demote: float = DEFAULT_PUSH_IDLE_DEMOTE,
        push_max_subscriptions: Optional[int] = None,
    ) -> None:
        self.client = client
        self.name = name
        self.ttl = ttl
        #: Negative answers default to the positive TTL; a deployment
        #: rolling daemons out incrementally (§4) may want it shorter so
        #: newly daemon'd hosts are noticed faster.
        self.negative_ttl = negative_ttl if negative_ttl is not None else ttl
        #: The push identity plane: subscribe-and-push for hot hosts.
        self.push = push
        self.push_idle_demote = push_idle_demote
        #: Hard cap on the subscription table (bounded-state invariant);
        #: ``None`` means unbounded.
        self.push_max_subscriptions = push_max_subscriptions
        #: Called with the host IP whenever a subscription is closed, so
        #: the controller can reset that host's promotion counter (a
        #: demoted host must re-earn residency from fresh punt history).
        self.on_demote: Optional[Callable[[str], None]] = None
        self._entries: dict[tuple, CacheEntry] = {}
        # Lazily-invalidated min-heap of (expires_at, seq, key) so TTL
        # sweeps and deadline queries cost O(log n), not a full scan
        # (same pattern as core.lifecycle.ExpiryHeap; the entries dict
        # stays the source of truth, stale heap records are skipped).
        self._deadlines: list[tuple[float, int, tuple]] = []
        self._seq = itertools.count()
        # Daemons already carrying one of our invalidation listeners:
        # host IP → (daemon, listener), the daemon held strongly — a
        # *replaced* daemon on the same host compares non-identical and
        # gets a fresh subscription (an id()-based set could alias after
        # GC) — and the listener kept so it can be unregistered again.
        self._subscribed: dict[str, tuple[object, Callable[[str], None]]] = {}
        #: The resident store: never-expiring authoritative answers for
        #: subscribed hosts, keyed like :attr:`_entries` but *not* in
        #: the deadline heap (resident answers are dropped by deltas and
        #: demotion, never by a TTL sweep).
        self._resident: dict[tuple, CacheEntry] = {}
        #: Standing subscriptions by host IP.
        self._subs: dict[str, PushSubscription] = {}
        #: Daemons that refused our SUBSCRIBE (legacy, wire v1), keyed
        #: host-ip → refusing daemon object: the same object is never
        #: re-knocked, but a *replaced* (possibly upgraded) daemon is.
        self._push_refused: dict[str, object] = {}
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.negative_hits = 0
        self.interceptor_bypasses = 0
        self.invalidation_events = 0
        self.invalidated_entries = 0
        self.expirations = 0
        self.resident_hits = 0
        self.resident_fills = 0
        self.resident_refreshes = 0
        self.deltas_applied = 0
        self.duplicate_deltas = 0
        self.subscriptions_opened = 0
        self.subscriptions_closed = 0
        self.subscriptions_adopted = 0
        self.adoptions_stale = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Return whether the engine does anything beyond pass-through."""
        return self.ttl > 0.0 or self.negative_ttl > 0.0 or self.push

    def query(
        self,
        flow: FlowSpec,
        role: str,
        *,
        from_node=None,
        keys: Optional[Sequence[str]] = None,
        interceptors: Sequence[QueryInterceptor] = (),
        now: Optional[float] = None,
    ) -> QueryOutcome:
        """Answer one endpoint query, from cache when possible.

        Same signature as :meth:`QueryClient.query` plus an optional
        explicit clock reading (defaults to the topology's simulator).
        Queries carrying interceptors bypass the cache: interception is
        a per-query decision (§3.4) a warm entry must not pre-empt.
        """
        if not self.enabled:
            return self.client.query(
                flow, role, from_node=from_node, keys=keys, interceptors=interceptors
            )
        if interceptors:
            self.interceptor_bypasses += 1
            return self.client.query(
                flow, role, from_node=from_node, keys=keys, interceptors=interceptors
            )
        now = self._now(now)
        key = self._key(flow, role, keys)
        resident = self._resident.get(key)
        if resident is not None:
            # Subscribed host: the resident answer is authoritative and
            # costs zero round trips (or, mid-refresh, the remainder of
            # the delta-triggered re-prime already in flight).
            outcome = self._serve(resident, flow, role, keys, now)
            if not outcome.coalesced:
                self._note_resident_hit(resident, now)
            return outcome
        entry = self._entries.get(key)
        if entry is not None and not self._valid(entry, now):
            del self._entries[key]
            self.expirations += 1
            entry = None
        if entry is not None and entry.flow_scoped and entry.outcome.query.flow != flow:
            # Another flow's flow-scoped answer: this flow must query
            # fresh (the entry stays valid for its own flow's re-punts,
            # though a refill under the same key replaces it).
            entry = None
        if entry is not None:
            return self._serve(entry, flow, role, keys, now)
        self.misses += 1
        outcome = self.client.query(
            flow, role, from_node=from_node, keys=keys, interceptors=interceptors
        )
        self._fill(key, outcome, now)
        return outcome

    def query_both_ends(
        self,
        flow: FlowSpec,
        *,
        from_node=None,
        keys: Optional[Sequence[str]] = None,
        interceptors: Sequence[QueryInterceptor] = (),
        now: Optional[float] = None,
    ) -> tuple[QueryOutcome, QueryOutcome]:
        """Query both ends of ``flow`` through the cache (§2 step 3).

        Mirrors :meth:`QueryClient.query_both_ends`, including its
        per-role interceptor ordering: ``interceptors`` are given
        querier → destination, and the source-side query walks them
        reversed.
        """
        toward_source, toward_destination = per_role_interceptors(interceptors)
        src_outcome = self.query(
            flow, ROLE_SOURCE, from_node=from_node, keys=keys,
            interceptors=toward_source, now=now,
        )
        dst_outcome = self.query(
            flow, ROLE_DESTINATION, from_node=from_node, keys=keys,
            interceptors=toward_destination, now=now,
        )
        return src_outcome, dst_outcome

    # ------------------------------------------------------------------
    # Async queries (continuation-scheduled decision core)
    # ------------------------------------------------------------------

    def query_async(
        self,
        flow: FlowSpec,
        role: str,
        *,
        from_node=None,
        keys: Optional[Sequence[str]] = None,
        interceptors: Sequence[QueryInterceptor] = (),
        now: Optional[float] = None,
    ) -> Future:
        """Dispatch one endpoint query; the answer arrives as a scheduled event.

        Same cache semantics (and the same counters) as :meth:`query`,
        but the result is delivered through a
        :class:`~repro.netsim.events.Future` completing at the instant
        the answer is really available:

        * a warm hit (or negative hit) completes immediately — a cached
          answer costs zero simulated time;
        * a coalescing lookup parks its continuation on the in-flight
          entry's waiter list; the one shared arrival event completes
          every waiter when the underlying round-trip lands;
        * a miss issues the real query and completes at
          ``now + outcome.latency``.

        This is what lets the controller overlap thousands of in-flight
        round-trips instead of charging each as one opaque delay.
        """
        if not self.enabled:
            return self.client.query_async(
                flow, role, from_node=from_node, keys=keys, interceptors=interceptors
            )
        if interceptors:
            self.interceptor_bypasses += 1
            return self.client.query_async(
                flow, role, from_node=from_node, keys=keys, interceptors=interceptors
            )
        future = Future()
        now = self._now(now)
        key = self._key(flow, role, keys)
        resident = self._resident.get(key)
        if resident is not None:
            outcome = self._serve(resident, flow, role, keys, now)
            if outcome.coalesced:
                self._enlist(resident, future, outcome, now)
            else:
                self._note_resident_hit(resident, now)
                future.set_result(outcome)
            return future
        entry = self._entries.get(key)
        if entry is not None and not self._valid(entry, now):
            del self._entries[key]
            self.expirations += 1
            entry = None
        if entry is not None and entry.flow_scoped and entry.outcome.query.flow != flow:
            entry = None
        if entry is not None:
            outcome = self._serve(entry, flow, role, keys, now)
            if outcome.coalesced:
                self._enlist(entry, future, outcome, now)
            else:
                future.set_result(outcome)
            return future
        self.misses += 1
        outcome = self.client.query(
            flow, role, from_node=from_node, keys=keys, interceptors=interceptors
        )
        self._fill(key, outcome, now)
        entry = self._entries.get(key) or self._resident.get(key)
        sim = self.client.topology.sim
        if entry is not None and sim is not None and entry.ready_at > now:
            # The filler waits on the very entry it created, through the
            # same waiter list any coalescing punt joins.
            self._enlist(entry, future, outcome, now)
        elif sim is not None and outcome.latency > 0:
            sim.schedule(
                outcome.latency, future.set_result, outcome,
                label=f"identpp:answer:{role}",
            )
        else:
            future.set_result(outcome)
        return future

    def query_both_ends_async(
        self,
        flow: FlowSpec,
        *,
        from_node=None,
        keys: Optional[Sequence[str]] = None,
        interceptors: Sequence[QueryInterceptor] = (),
        now: Optional[float] = None,
    ) -> tuple[Future, Future]:
        """Dispatch both endpoint queries; each answer arrives independently.

        Mirrors :meth:`query_both_ends` (including the per-role
        interceptor ordering) but returns one future per endpoint, so
        the caller can react to the faster answer without waiting for
        the slower one.
        """
        toward_source, toward_destination = per_role_interceptors(interceptors)
        src_future = self.query_async(
            flow, ROLE_SOURCE, from_node=from_node, keys=keys,
            interceptors=toward_source, now=now,
        )
        dst_future = self.query_async(
            flow, ROLE_DESTINATION, from_node=from_node, keys=keys,
            interceptors=toward_destination, now=now,
        )
        return src_future, dst_future

    def _enlist(self, entry: CacheEntry, future: Future, outcome: QueryOutcome, now: float) -> None:
        """Park a continuation on an in-flight entry's waiter list."""
        sim = self.client.topology.sim
        if sim is None or entry.ready_at <= now:
            future.set_result(outcome)
            return
        entry.waiters.append((future, outcome))
        if not entry.arrival_armed:
            entry.arrival_armed = True
            sim.schedule(
                entry.ready_at - now, self._arrival_fired, entry,
                label="identpp:answer-shared",
            )

    def _arrival_fired(self, entry: CacheEntry) -> None:
        """The shared answer landed: complete every parked continuation.

        Holds the entry object, not its key, so waiters still complete
        if the entry was invalidated or replaced mid-flight — the answer
        was already on the wire when the invalidation happened, and a
        punt that joined the round-trip must not hang on it.
        """
        waiters, entry.waiters = entry.waiters, []
        for future, outcome in waiters:
            future.set_result(outcome)

    # ------------------------------------------------------------------
    # Cache mechanics
    # ------------------------------------------------------------------

    def _now(self, now: Optional[float]) -> float:
        if now is not None:
            return now
        sim = self.client.topology.sim
        return sim.now if sim is not None else 0.0

    def _key(self, flow: FlowSpec, role: str, keys: Optional[Sequence[str]]) -> tuple:
        """Return the cache key: (host, role, key-set) + target proto/port.

        The proto and target-side port are part of the key because they
        select the answering socket: every client hitting
        ``server:80/tcp`` shares the listener's answer (the hot-server
        win), while ``server:443`` is a different listener and a
        different entry.  On the source side the target port is the
        flow's ephemeral source port, which makes source entries
        effectively per-flow — a source answer names the one process
        that opened the connection and must not leak across flows.
        """
        key_hint = tuple(keys) if keys is not None else self.client.default_keys
        target_ip = flow.src_ip if role == ROLE_SOURCE else flow.dst_ip
        target_port = flow.src_port if role == ROLE_SOURCE else flow.dst_port
        return (str(target_ip), role, key_hint, flow.proto, target_port)

    def _valid(self, entry: CacheEntry, now: float) -> bool:
        if now >= entry.expires_at:
            return False
        if entry.negative:
            if entry.unreachable:
                # Any topology change may have restored the path.
                return entry.topology_epoch == self.client.topology.mutation_epoch
            # A daemon deployed mid-TTL must be noticed immediately, not
            # after the negative entry ages out (§4 incremental benefit).
            host = self.client.topology.node_for_ip(entry.host_ip)
            if getattr(host, "identpp_daemon", None) is not None:
                return False
        return True

    def _serve(
        self,
        entry: CacheEntry,
        flow: FlowSpec,
        role: str,
        keys: Optional[Sequence[str]],
        now: float,
    ) -> QueryOutcome:
        """Build the outcome a cached (or in-flight) entry answers with."""
        entry.hits += 1
        query = IdentQuery(
            flow=flow,
            target_role=role,
            keys=tuple(keys) if keys is not None else self.client.default_keys,
        )
        template = entry.outcome
        if entry.ready_at > now:
            # The underlying query is still outstanding: coalesce onto
            # it.  This punt waits only for the remainder, and the one
            # real round-trip serves everyone.
            self.coalesced += 1
            return QueryOutcome(
                query=query,
                response=template.response,
                latency=entry.ready_at - now,
                answered_by=template.answered_by,
                timed_out=template.timed_out,
                unreachable=template.unreachable,
                coalesced=True,
                augmented_by=list(template.augmented_by),
            )
        if entry.negative:
            self.negative_hits += 1
            return QueryOutcome(
                query=query,
                response=None,
                latency=0.0,
                timed_out=True,
                unreachable=template.unreachable,
                cached=True,
            )
        self.hits += 1
        return QueryOutcome(
            query=query,
            response=template.response,
            latency=0.0,
            answered_by=template.answered_by,
            cached=True,
            augmented_by=list(template.augmented_by),
        )

    def _fill(self, key: tuple, outcome: QueryOutcome, now: float) -> None:
        """Remember a fresh outcome (and subscribe to its invalidation)."""
        if outcome.intercepted:
            return
        host_ip = key[0]
        ready_at = now + outcome.latency
        if outcome.timed_out:
            if self.negative_ttl <= 0.0:
                return
            expires_at = ready_at + self.negative_ttl
            self._entries[key] = CacheEntry(
                key=key,
                host_ip=host_ip,
                outcome=outcome,
                ready_at=ready_at,
                expires_at=expires_at,
                negative=True,
                unreachable=outcome.unreachable,
                topology_epoch=self.client.topology.mutation_epoch,
            )
            heapq.heappush(self._deadlines, (expires_at, next(self._seq), key))
            return
        if self.ttl <= 0.0 and not self.push:
            return
        daemon = getattr(self.client.topology.node_for_ip(host_ip), "identpp_daemon", None)
        # Source answers name the one process that opened the flow, and
        # a destination answer may carry flow-published pairs or a
        # per-connection worker's identity: such entries serve only
        # their own flow.  A listener's flow-independent answer shares.
        flow_scoped = (
            outcome.query.target_role == ROLE_SOURCE
            or daemon is None
            or not daemon.answer_is_shareable(outcome.query)
        )
        if self.push and not flow_scoped and host_ip in self._subs:
            # Subscribed host: the fresh shareable answer becomes
            # *resident* — authoritative until the daemon pushes a
            # delta, never TTL-expired, kept out of the deadline heap.
            self._resident[key] = CacheEntry(
                key=key,
                host_ip=host_ip,
                outcome=outcome,
                ready_at=ready_at,
                expires_at=float("inf"),
            )
            self.resident_fills += 1
            self._subscribe(host_ip, daemon)
            return
        if self.ttl <= 0.0:
            return
        expires_at = ready_at + self.ttl
        self._entries[key] = CacheEntry(
            key=key,
            host_ip=host_ip,
            outcome=outcome,
            ready_at=ready_at,
            expires_at=expires_at,
            flow_scoped=flow_scoped,
        )
        heapq.heappush(self._deadlines, (expires_at, next(self._seq), key))
        if daemon is not None:
            self._subscribe(host_ip, daemon)

    def _note_resident_hit(self, entry: CacheEntry, now: float) -> None:
        """Count one resident-store hit and refresh the host's idle clock."""
        self.resident_hits += 1
        sub = self._subs.get(entry.host_ip)
        if sub is not None:
            sub.last_hit = now

    def _subscribe(self, host_ip: str, daemon) -> None:
        """Hook this engine into the answering daemon's invalidation fan-out."""
        ip = str(host_ip)
        current = self._subscribed.get(ip)
        if current is not None and current[0] is daemon:
            return
        if current is not None:
            # The host's daemon was replaced: unhook from the old object
            # so it cannot strand a listener on the dead daemon.
            current[0].remove_invalidation_listener(current[1])

        def listener(reason: str, _ip=ip) -> None:
            self.invalidate_host(_ip, reason)

        self._subscribed[ip] = (daemon, listener)
        daemon.add_invalidation_listener(listener)

    def _unlisten(self, host_ip: str) -> None:
        """Unregister this engine's invalidation listener from one daemon."""
        record = self._subscribed.pop(str(host_ip), None)
        if record is not None:
            daemon, listener = record
            daemon.remove_invalidation_listener(listener)

    # ------------------------------------------------------------------
    # Push plane: standing subscriptions + the resident store
    # ------------------------------------------------------------------

    def subscribe_host(
        self, host_ip, *, from_node=None, now: Optional[float] = None
    ) -> bool:
        """Open (or confirm) a standing subscription on one host's daemon.

        Returns ``True`` when the host is subscribed after the call.
        Refusals — push plane off, no daemon on the host, a legacy
        wire-v1 daemon, or the subscription table at
        :attr:`push_max_subscriptions` — return ``False``.  A refusing
        daemon *object* is remembered and never re-knocked, but a
        replaced (possibly upgraded) daemon on the same IP gets a fresh
        attempt, mirroring the host-ip → daemon-ref keying of the
        invalidation listeners.
        """
        if not self.push:
            return False
        ip = str(host_ip)
        daemon = getattr(self.client.topology.node_for_ip(ip), "identpp_daemon", None)
        if daemon is None:
            return False
        now = self._now(now)
        existing = self._subs.get(ip)
        if existing is not None:
            if existing.daemon is daemon:
                return True
            # The daemon was replaced: our delta sink lives on an object
            # no longer attached to the host.  Close the dead
            # subscription (and its now-unauthoritative answers) and
            # negotiate with the new daemon from scratch.
            existing.daemon.unsubscribe(self.name)
            self._drop_resident(ip)
            del self._subs[ip]
        if self._push_refused.get(ip) is daemon:
            return False
        if (
            self.push_max_subscriptions is not None
            and len(self._subs) >= self.push_max_subscriptions
        ):
            return False
        ack = daemon.subscribe(
            IdentSubscribe(
                host_ip=ip, subscriber=self.name, keys=self.client.default_keys
            ),
            self._on_delta,
        )
        if not ack.accepted or CAP_SUBSCRIBE not in ack.capabilities:
            self._push_refused[ip] = daemon
            return False
        self._subs[ip] = PushSubscription(
            host_ip=ip,
            daemon=daemon,
            serial=ack.serial,
            subscribed_at=now,
            last_hit=now,
            from_node=from_node,
        )
        self.subscriptions_opened += 1
        self._subscribe(ip, daemon)
        # Shareable answers fetched just before the promotion are still
        # authoritative — any daemon event since their fill would have
        # dropped them through the invalidation listener — so upgrade
        # them in place.  The flash-crowd case depends on this: the hot
        # answer usually fills on the punt *before* the one that trips
        # the promotion threshold, and without the upgrade the first
        # steady-state wave would pay one more TTL round-trip.
        for key, entry in list(self._entries.items()):
            if entry.host_ip != ip or entry.negative or entry.flow_scoped:
                continue
            if now >= entry.expires_at:
                continue
            del self._entries[key]
            entry.expires_at = float("inf")
            self._resident[key] = entry
            self.resident_fills += 1
        return True

    def unsubscribe_host(self, host_ip) -> bool:
        """Close a standing subscription and drop its resident answers.

        The daemon-side delta sink is always cancelled, and when the
        host has no TTL entries left either, the invalidation listener
        is unregistered too — a demoted host strands nothing on its
        daemon (the stale-subscription leak fix).  Fires
        :attr:`on_demote` so the controller can reset the host's
        promotion counter.  Returns ``True`` when a subscription
        existed.
        """
        ip = str(host_ip)
        sub = self._subs.pop(ip, None)
        if sub is None:
            return False
        sub.daemon.unsubscribe(self.name)
        self._drop_resident(ip)
        if not any(entry.host_ip == ip for entry in self._entries.values()):
            self._unlisten(ip)
        self.subscriptions_closed += 1
        if self.on_demote is not None:
            self.on_demote(ip)
        return True

    def _drop_resident(self, host_ip: str) -> int:
        """Evict one host's resident answers; returns how many."""
        ip = str(host_ip)
        stale = [key for key, entry in self._resident.items() if entry.host_ip == ip]
        for key in stale:
            del self._resident[key]
        return len(stale)

    def _on_delta(self, delta: IdentDelta) -> None:
        """Apply one pushed delta: drop + proactively re-prime residents.

        Deltas are serial-numbered by the daemon; one at or below the
        subscription's last applied serial is a duplicate (e.g.
        re-delivered around a failover re-home) and is dropped — the
        refresh it would trigger already happened.
        """
        sub = self._subs.get(str(delta.host_ip))
        if sub is None:
            return
        if delta.serial <= sub.serial:
            self.duplicate_deltas += 1
            sub.duplicate_deltas += 1
            return
        sub.serial = delta.serial
        sub.deltas_applied += 1
        self.deltas_applied += 1
        now = self._now(None)
        for entry in [e for e in self._resident.values() if e.host_ip == sub.host_ip]:
            self._refresh_resident(sub, entry, now)

    def _refresh_resident(
        self, sub: PushSubscription, entry: CacheEntry, now: float
    ) -> None:
        """Replace one resident answer off the punt path.

        The re-query is issued the instant the delta arrives, so by the
        time the next punt lands the refreshed answer is either ready
        (zero wait) or still in flight (the punt coalesces onto the
        remainder) — this is what makes push convergence beat the TTL
        plane, whose first post-change punt pays the full round trip.
        An answer that stopped being shareable (or a vanished daemon)
        ends residency for that key; the pull path takes over.
        """
        self.resident_refreshes += 1
        query = entry.outcome.query
        outcome = self.client.query(
            query.flow, query.target_role, from_node=sub.from_node, keys=query.keys
        )
        daemon = getattr(
            self.client.topology.node_for_ip(entry.host_ip), "identpp_daemon", None
        )
        if (
            outcome.timed_out
            or outcome.intercepted
            or daemon is None
            or not daemon.answer_is_shareable(outcome.query)
        ):
            self._resident.pop(entry.key, None)
            return
        self._resident[entry.key] = CacheEntry(
            key=entry.key,
            host_ip=entry.host_ip,
            outcome=outcome,
            ready_at=now + outcome.latency,
            expires_at=float("inf"),
        )

    def demote_idle(self, now: float) -> int:
        """Demote subscriptions idle past ``push_idle_demote`` (sweep hook)."""
        if not self.push:
            return 0
        idle = [
            ip
            for ip, sub in self._subs.items()
            if now - max(sub.last_hit, sub.subscribed_at) >= self.push_idle_demote
        ]
        for ip in idle:
            self.unsubscribe_host(ip)
        return len(idle)

    def demotable_count(self) -> int:
        """Return how many subscriptions a sweep could ever demote."""
        return len(self._subs)

    def next_demotion(self) -> Optional[float]:
        """Return the earliest instant a subscription can go idle-demoted."""
        if not self._subs:
            return None
        return min(
            max(sub.last_hit, sub.subscribed_at) + self.push_idle_demote
            for sub in self._subs.values()
        )

    # ------------------------------------------------------------------
    # Push plane: failover hand-off
    # ------------------------------------------------------------------

    def export_push_state(self) -> list[dict]:
        """Tear down every subscription for failover hand-off.

        Returns one record per subscription — host, last applied delta
        serial, the querying node and the resident entries — in the
        shape :meth:`adopt_push_state` consumes on the successor shard.
        The dying engine's delta sinks and invalidation listeners are
        all unregistered, so re-homing never leaves a daemon streaming
        deltas at a dead shard.
        """
        records: list[dict] = []
        for ip in list(self._subs):
            sub = self._subs.pop(ip)
            sub.daemon.unsubscribe(self.name)
            entries = [
                self._resident.pop(key)
                for key, entry in list(self._resident.items())
                if entry.host_ip == ip
            ]
            self._unlisten(ip)
            records.append(
                {
                    "host_ip": ip,
                    "serial": sub.serial,
                    "from_node": sub.from_node,
                    "entries": entries,
                }
            )
        return records

    def adopt_push_state(self, records, *, now: Optional[float] = None) -> int:
        """Re-home exported subscriptions onto this engine (failover).

        For each record the successor opens its *own* subscription, then
        compares delta serials: if the daemon published nothing since
        the dead shard's last applied delta, the exported resident
        answers install verbatim (no deltas were lost, and the serial
        guard in :meth:`_on_delta` rejects any replayed ones); if the
        serials diverged, the answers are conservatively re-primed
        through :meth:`_refresh_resident`, so the successor is resident
        — or resident-in-flight — before the re-punted backlog arrives.
        Returns how many subscriptions were adopted.
        """
        if not self.push:
            return 0
        now = self._now(now)
        adopted = 0
        for record in records:
            ip = str(record["host_ip"])
            if not self.subscribe_host(ip, from_node=record.get("from_node"), now=now):
                continue
            adopted += 1
            self.subscriptions_adopted += 1
            sub = self._subs[ip]
            fresh = sub.serial == record["serial"]
            if not fresh:
                self.adoptions_stale += 1
            for entry in record["entries"]:
                # The dead engine's parked continuations must not
                # transfer: its futures belong to decision tasks that
                # were exported separately (or died with the shard).
                entry.waiters = []
                entry.arrival_armed = False
                self._resident[entry.key] = entry
                if not fresh:
                    self._refresh_resident(sub, entry, now)
        return adopted

    # ------------------------------------------------------------------
    # Invalidation + expiry
    # ------------------------------------------------------------------

    def invalidate_host(self, host_ip, reason: str = "") -> int:
        """Drop every entry (cached or in flight) for one host.

        Called by daemon-side events — runtime-key publishes, socket
        owner changes, spoofing, host compromise — and usable directly
        by an administrator.  Returns how many entries were removed.

        A *subscribed* host's resident answers are left in place: they
        are authoritative-until-delta, and every daemon event that calls
        this also publishes a delta that drops and re-primes them.
        Administrative invalidation of a subscribed host must therefore
        go through :meth:`unsubscribe_host` first, as
        ``Controller.quarantine_host`` does.
        """
        ip = str(host_ip)
        stale = [key for key, entry in self._entries.items() if entry.host_ip == ip]
        for key in stale:
            del self._entries[key]
        removed = len(stale)
        if ip not in self._subs:
            removed += self._drop_resident(ip)
        self.invalidation_events += 1
        self.invalidated_entries += removed
        return removed

    def clear(self) -> int:
        """Drop every entry (TTL and resident); returns how many were removed.

        Subscriptions stay open: the next punt on a subscribed host
        re-primes its resident answers.
        """
        removed = len(self._entries) + len(self._resident)
        self._entries.clear()
        self._resident.clear()
        self._deadlines.clear()
        return removed

    def expire(self, now: float) -> int:
        """Reclaim entries past their TTL (lifecycle-sweep hook).

        Heap-driven: costs ``O(expired log n)``, not a full scan.
        Popped deadlines whose entry was already invalidated, refreshed
        or lookup-expired are skipped (lazy invalidation).
        """
        removed = 0
        heap = self._deadlines
        while heap and heap[0][0] <= now:
            due, _, key = heapq.heappop(heap)
            entry = self._entries.get(key)
            if entry is not None and entry.expires_at == due:
                del self._entries[key]
                removed += 1
        self.expirations += removed
        return removed

    def expirable_count(self) -> int:
        """Return how many entries a sweep could ever reclaim."""
        return len(self._entries)

    def next_expiry(self) -> Optional[float]:
        """Return the earliest live entry deadline (lifecycle scheduling hook)."""
        heap = self._deadlines
        while heap:
            due, _, key = heap[0]
            entry = self._entries.get(key)
            if entry is None or entry.expires_at != due:
                heapq.heappop(heap)
                continue
            return due
        return None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def lookups(self) -> int:
        """Return how many queries were requested through the engine."""
        return self.hits + self.misses + self.coalesced + self.negative_hits

    def subscription_count(self) -> int:
        """Return how many standing push subscriptions are open."""
        return len(self._subs)

    def is_subscribed(self, host_ip) -> bool:
        """Return whether ``host_ip`` has a standing push subscription."""
        return str(host_ip) in self._subs

    def push_telemetry(self) -> dict[str, float]:
        """Return the push-plane probe values (cheap, sampled per tick)."""
        total = self.lookups()
        return {
            "resident_ratio": self.resident_hits / total if total else 0.0,
            "subscriptions": float(len(self._subs)),
            "deltas_applied": float(self.deltas_applied),
        }

    def telemetry_ratios(self) -> dict[str, float]:
        """Return just the hit/negative/coalesce ratios.

        The telemetry plane samples these every tick; :meth:`stats`
        builds a 17-key dict per call, which is report material, not
        probe material.
        """
        total = self.lookups()
        if not total:
            return {"hit_rate": 0.0, "negative_hit_rate": 0.0, "coalesce_rate": 0.0}
        return {
            "hit_rate": self.hits / total,
            "negative_hit_rate": self.negative_hits / total,
            "coalesce_rate": self.coalesced / total,
        }

    def stats(self) -> dict[str, object]:
        """Return headline numbers (surfaced by ``Controller.summary()``)."""
        total = self.lookups()

        def rate(count: int) -> float:
            return count / total if total else 0.0

        return {
            "enabled": self.enabled,
            "entries": len(self._entries),
            "lookups": total,
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "negative_hits": self.negative_hits,
            "interceptor_bypasses": self.interceptor_bypasses,
            "hit_rate": rate(self.hits),
            "coalesce_rate": rate(self.coalesced),
            "negative_hit_rate": rate(self.negative_hits),
            "invalidation_events": self.invalidation_events,
            "invalidated_entries": self.invalidated_entries,
            "expirations": self.expirations,
            "ttl": self.ttl,
            "negative_ttl": self.negative_ttl,
            "push": self.push,
            "resident_entries": len(self._resident),
            "subscriptions": len(self._subs),
            "resident_hits": self.resident_hits,
            "resident_fills": self.resident_fills,
            "resident_refreshes": self.resident_refreshes,
            "resident_hit_rate": rate(self.resident_hits),
            "deltas_applied": self.deltas_applied,
            "duplicate_deltas": self.duplicate_deltas,
            "subscriptions_opened": self.subscriptions_opened,
            "subscriptions_closed": self.subscriptions_closed,
            "subscriptions_adopted": self.subscriptions_adopted,
            "adoptions_stale": self.adoptions_stale,
        }

    def __repr__(self) -> str:
        return (
            f"QueryEngine({self.name!r}, ttl={self.ttl}, "
            f"entries={len(self._entries)})"
        )
