"""The query engine: caching + coalescing layer over :class:`QueryClient`.

The paper's flow-setup cost is dominated by step 3 of §2: the
controller "requests additional information from both the source and
the destination end-hosts".  Issued naively that is two fresh
synchronous round-trips per punt, so a popular server's daemon is
re-interrogated once per flow and a daemon-less legacy host (§4,
"Incremental Benefit") burns a full query timeout on every connection
attempt.  :class:`QueryEngine` sits between the controller and its
:class:`~repro.identpp.client.QueryClient` and removes that redundancy
three ways:

* an **endpoint response cache** keyed on *(host, role, key-set)* plus
  the flow's proto and target-side port (the part of the 5-tuple the
  answering socket is matched on), with a TTL and explicit
  invalidation — a daemon publishing new runtime keys, loading
  configuration, being spoofed, its host being compromised, or its
  host's socket table changing owners all push an invalidation through
  :meth:`IdentPPDaemon.add_invalidation_listener`, so stale answers
  never outlive the event that staled them;
* **in-flight coalescing** — a cached entry whose answer has not
  "arrived" yet (its ``ready_at`` is still in the simulated future)
  represents an outstanding query; concurrent punts needing the same
  endpoint's answer share it, each charged only the *remaining* wait,
  instead of issuing N identical round-trips;
* a **negative cache** — a query that timed out (no daemon, or no path
  to the host) is remembered for ``negative_ttl``, so a legacy host
  costs one timeout per TTL instead of one per flow.  Negative entries
  self-heal: a daemon appearing on the host, or any topology mutation
  (for unreachable hosts), invalidates them on the next lookup.

Two correctness guards bound what the cache may share:

* **Interception is per-query.**  A query carrying on-path
  interceptors bypasses the cache entirely: an interceptor's decision
  to answer, decline or augment is made per flow (§3.4), so serving a
  warm entry would silently disable the interception mechanism and
  replay another flow's augmented sections.
* **Flow-scoped answers stay flow-scoped.**  Source-side answers, and
  any destination answer the daemon reports as not shareable
  (:meth:`IdentPPDaemon.answer_is_shareable`: flow-specific runtime
  pairs, or a connected per-connection worker socket), are served only
  to re-punts of the *same* flow — one flow's identity is never
  attributed to another.  Only a listener's flow-independent answer
  (the hot-server case) is shared across flows.

A TTL of ``0`` disables the engine entirely (every call passes straight
through to the client), which is the default wiring so existing
scenario timelines are unchanged; benchmarks and production configs
opt in via ``ControllerConfig.query_cache_ttl``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.identpp.client import (
    QueryClient,
    QueryInterceptor,
    QueryOutcome,
    per_role_interceptors,
)
from repro.identpp.flowspec import FlowSpec
from repro.identpp.wire import IdentQuery, ROLE_DESTINATION, ROLE_SOURCE
from repro.netsim.events import Future

#: Default TTL benchmarks/workloads use when they enable the engine.
DEFAULT_QUERY_CACHE_TTL = 30.0


@dataclass
class CacheEntry:
    """One cached endpoint answer (positive or negative).

    ``ready_at`` is when the underlying query completes: before it the
    entry is *in flight* (lookups coalesce onto it, charged the
    remaining wait), after it the entry is a plain cache hit until
    ``expires_at``.
    """

    key: tuple
    host_ip: str
    outcome: QueryOutcome
    ready_at: float
    expires_at: float
    negative: bool = False
    #: Flow-scoped entries answer only re-punts of the exact flow that
    #: filled them (source-side answers, and destination answers the
    #: daemon marked not shareable) — a different flow must query fresh.
    flow_scoped: bool = False
    #: Negative entries for *unreachable* hosts are keyed on the
    #: topology epoch: any connectivity change may have restored a path,
    #: so the entry must be re-proven.
    unreachable: bool = False
    topology_epoch: int = -1
    hits: int = 0
    #: Continuations parked on an in-flight entry by the async query
    #: path: ``(future, prepared outcome)`` pairs completed together by
    #: one arrival event when the underlying answer lands at
    #: ``ready_at`` — N coalesced punts cost one event, not N timers.
    waiters: list = field(default_factory=list)
    #: Whether the shared arrival event for :attr:`waiters` is armed.
    #: Stays ``True`` after it fires: past ``ready_at`` lookups are
    #: plain hits and never enlist.
    arrival_armed: bool = False


class QueryEngine:
    """Caching, coalescing front-end for one controller's ident++ queries."""

    def __init__(
        self,
        client: QueryClient,
        *,
        ttl: float = 0.0,
        negative_ttl: Optional[float] = None,
        name: str = "query-engine",
    ) -> None:
        self.client = client
        self.name = name
        self.ttl = ttl
        #: Negative answers default to the positive TTL; a deployment
        #: rolling daemons out incrementally (§4) may want it shorter so
        #: newly daemon'd hosts are noticed faster.
        self.negative_ttl = negative_ttl if negative_ttl is not None else ttl
        self._entries: dict[tuple, CacheEntry] = {}
        # Lazily-invalidated min-heap of (expires_at, seq, key) so TTL
        # sweeps and deadline queries cost O(log n), not a full scan
        # (same pattern as core.lifecycle.ExpiryHeap; the entries dict
        # stays the source of truth, stale heap records are skipped).
        self._deadlines: list[tuple[float, int, tuple]] = []
        self._seq = itertools.count()
        # Daemons already carrying one of our invalidation listeners,
        # keyed by host IP with the daemon held strongly: a *replaced*
        # daemon on the same host compares non-identical and gets a
        # fresh subscription (an id()-based set could alias after GC).
        self._subscribed: dict[str, object] = {}
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.negative_hits = 0
        self.interceptor_bypasses = 0
        self.invalidation_events = 0
        self.invalidated_entries = 0
        self.expirations = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Return whether the engine does anything beyond pass-through."""
        return self.ttl > 0.0 or self.negative_ttl > 0.0

    def query(
        self,
        flow: FlowSpec,
        role: str,
        *,
        from_node=None,
        keys: Optional[Sequence[str]] = None,
        interceptors: Sequence[QueryInterceptor] = (),
        now: Optional[float] = None,
    ) -> QueryOutcome:
        """Answer one endpoint query, from cache when possible.

        Same signature as :meth:`QueryClient.query` plus an optional
        explicit clock reading (defaults to the topology's simulator).
        Queries carrying interceptors bypass the cache: interception is
        a per-query decision (§3.4) a warm entry must not pre-empt.
        """
        if not self.enabled:
            return self.client.query(
                flow, role, from_node=from_node, keys=keys, interceptors=interceptors
            )
        if interceptors:
            self.interceptor_bypasses += 1
            return self.client.query(
                flow, role, from_node=from_node, keys=keys, interceptors=interceptors
            )
        now = self._now(now)
        key = self._key(flow, role, keys)
        entry = self._entries.get(key)
        if entry is not None and not self._valid(entry, now):
            del self._entries[key]
            self.expirations += 1
            entry = None
        if entry is not None and entry.flow_scoped and entry.outcome.query.flow != flow:
            # Another flow's flow-scoped answer: this flow must query
            # fresh (the entry stays valid for its own flow's re-punts,
            # though a refill under the same key replaces it).
            entry = None
        if entry is not None:
            return self._serve(entry, flow, role, keys, now)
        self.misses += 1
        outcome = self.client.query(
            flow, role, from_node=from_node, keys=keys, interceptors=interceptors
        )
        self._fill(key, outcome, now)
        return outcome

    def query_both_ends(
        self,
        flow: FlowSpec,
        *,
        from_node=None,
        keys: Optional[Sequence[str]] = None,
        interceptors: Sequence[QueryInterceptor] = (),
        now: Optional[float] = None,
    ) -> tuple[QueryOutcome, QueryOutcome]:
        """Query both ends of ``flow`` through the cache (§2 step 3).

        Mirrors :meth:`QueryClient.query_both_ends`, including its
        per-role interceptor ordering: ``interceptors`` are given
        querier → destination, and the source-side query walks them
        reversed.
        """
        toward_source, toward_destination = per_role_interceptors(interceptors)
        src_outcome = self.query(
            flow, ROLE_SOURCE, from_node=from_node, keys=keys,
            interceptors=toward_source, now=now,
        )
        dst_outcome = self.query(
            flow, ROLE_DESTINATION, from_node=from_node, keys=keys,
            interceptors=toward_destination, now=now,
        )
        return src_outcome, dst_outcome

    # ------------------------------------------------------------------
    # Async queries (continuation-scheduled decision core)
    # ------------------------------------------------------------------

    def query_async(
        self,
        flow: FlowSpec,
        role: str,
        *,
        from_node=None,
        keys: Optional[Sequence[str]] = None,
        interceptors: Sequence[QueryInterceptor] = (),
        now: Optional[float] = None,
    ) -> Future:
        """Dispatch one endpoint query; the answer arrives as a scheduled event.

        Same cache semantics (and the same counters) as :meth:`query`,
        but the result is delivered through a
        :class:`~repro.netsim.events.Future` completing at the instant
        the answer is really available:

        * a warm hit (or negative hit) completes immediately — a cached
          answer costs zero simulated time;
        * a coalescing lookup parks its continuation on the in-flight
          entry's waiter list; the one shared arrival event completes
          every waiter when the underlying round-trip lands;
        * a miss issues the real query and completes at
          ``now + outcome.latency``.

        This is what lets the controller overlap thousands of in-flight
        round-trips instead of charging each as one opaque delay.
        """
        if not self.enabled:
            return self.client.query_async(
                flow, role, from_node=from_node, keys=keys, interceptors=interceptors
            )
        if interceptors:
            self.interceptor_bypasses += 1
            return self.client.query_async(
                flow, role, from_node=from_node, keys=keys, interceptors=interceptors
            )
        future = Future()
        now = self._now(now)
        key = self._key(flow, role, keys)
        entry = self._entries.get(key)
        if entry is not None and not self._valid(entry, now):
            del self._entries[key]
            self.expirations += 1
            entry = None
        if entry is not None and entry.flow_scoped and entry.outcome.query.flow != flow:
            entry = None
        if entry is not None:
            outcome = self._serve(entry, flow, role, keys, now)
            if outcome.coalesced:
                self._enlist(entry, future, outcome, now)
            else:
                future.set_result(outcome)
            return future
        self.misses += 1
        outcome = self.client.query(
            flow, role, from_node=from_node, keys=keys, interceptors=interceptors
        )
        self._fill(key, outcome, now)
        entry = self._entries.get(key)
        sim = self.client.topology.sim
        if entry is not None and sim is not None and entry.ready_at > now:
            # The filler waits on the very entry it created, through the
            # same waiter list any coalescing punt joins.
            self._enlist(entry, future, outcome, now)
        elif sim is not None and outcome.latency > 0:
            sim.schedule(
                outcome.latency, future.set_result, outcome,
                label=f"identpp:answer:{role}",
            )
        else:
            future.set_result(outcome)
        return future

    def query_both_ends_async(
        self,
        flow: FlowSpec,
        *,
        from_node=None,
        keys: Optional[Sequence[str]] = None,
        interceptors: Sequence[QueryInterceptor] = (),
        now: Optional[float] = None,
    ) -> tuple[Future, Future]:
        """Dispatch both endpoint queries; each answer arrives independently.

        Mirrors :meth:`query_both_ends` (including the per-role
        interceptor ordering) but returns one future per endpoint, so
        the caller can react to the faster answer without waiting for
        the slower one.
        """
        toward_source, toward_destination = per_role_interceptors(interceptors)
        src_future = self.query_async(
            flow, ROLE_SOURCE, from_node=from_node, keys=keys,
            interceptors=toward_source, now=now,
        )
        dst_future = self.query_async(
            flow, ROLE_DESTINATION, from_node=from_node, keys=keys,
            interceptors=toward_destination, now=now,
        )
        return src_future, dst_future

    def _enlist(self, entry: CacheEntry, future: Future, outcome: QueryOutcome, now: float) -> None:
        """Park a continuation on an in-flight entry's waiter list."""
        sim = self.client.topology.sim
        if sim is None or entry.ready_at <= now:
            future.set_result(outcome)
            return
        entry.waiters.append((future, outcome))
        if not entry.arrival_armed:
            entry.arrival_armed = True
            sim.schedule(
                entry.ready_at - now, self._arrival_fired, entry,
                label="identpp:answer-shared",
            )

    def _arrival_fired(self, entry: CacheEntry) -> None:
        """The shared answer landed: complete every parked continuation.

        Holds the entry object, not its key, so waiters still complete
        if the entry was invalidated or replaced mid-flight — the answer
        was already on the wire when the invalidation happened, and a
        punt that joined the round-trip must not hang on it.
        """
        waiters, entry.waiters = entry.waiters, []
        for future, outcome in waiters:
            future.set_result(outcome)

    # ------------------------------------------------------------------
    # Cache mechanics
    # ------------------------------------------------------------------

    def _now(self, now: Optional[float]) -> float:
        if now is not None:
            return now
        sim = self.client.topology.sim
        return sim.now if sim is not None else 0.0

    def _key(self, flow: FlowSpec, role: str, keys: Optional[Sequence[str]]) -> tuple:
        """Return the cache key: (host, role, key-set) + target proto/port.

        The proto and target-side port are part of the key because they
        select the answering socket: every client hitting
        ``server:80/tcp`` shares the listener's answer (the hot-server
        win), while ``server:443`` is a different listener and a
        different entry.  On the source side the target port is the
        flow's ephemeral source port, which makes source entries
        effectively per-flow — a source answer names the one process
        that opened the connection and must not leak across flows.
        """
        key_hint = tuple(keys) if keys is not None else self.client.default_keys
        target_ip = flow.src_ip if role == ROLE_SOURCE else flow.dst_ip
        target_port = flow.src_port if role == ROLE_SOURCE else flow.dst_port
        return (str(target_ip), role, key_hint, flow.proto, target_port)

    def _valid(self, entry: CacheEntry, now: float) -> bool:
        if now >= entry.expires_at:
            return False
        if entry.negative:
            if entry.unreachable:
                # Any topology change may have restored the path.
                return entry.topology_epoch == self.client.topology.mutation_epoch
            # A daemon deployed mid-TTL must be noticed immediately, not
            # after the negative entry ages out (§4 incremental benefit).
            host = self.client.topology.node_for_ip(entry.host_ip)
            if getattr(host, "identpp_daemon", None) is not None:
                return False
        return True

    def _serve(
        self,
        entry: CacheEntry,
        flow: FlowSpec,
        role: str,
        keys: Optional[Sequence[str]],
        now: float,
    ) -> QueryOutcome:
        """Build the outcome a cached (or in-flight) entry answers with."""
        entry.hits += 1
        query = IdentQuery(
            flow=flow,
            target_role=role,
            keys=tuple(keys) if keys is not None else self.client.default_keys,
        )
        template = entry.outcome
        if entry.ready_at > now:
            # The underlying query is still outstanding: coalesce onto
            # it.  This punt waits only for the remainder, and the one
            # real round-trip serves everyone.
            self.coalesced += 1
            return QueryOutcome(
                query=query,
                response=template.response,
                latency=entry.ready_at - now,
                answered_by=template.answered_by,
                timed_out=template.timed_out,
                unreachable=template.unreachable,
                coalesced=True,
                augmented_by=list(template.augmented_by),
            )
        if entry.negative:
            self.negative_hits += 1
            return QueryOutcome(
                query=query,
                response=None,
                latency=0.0,
                timed_out=True,
                unreachable=template.unreachable,
                cached=True,
            )
        self.hits += 1
        return QueryOutcome(
            query=query,
            response=template.response,
            latency=0.0,
            answered_by=template.answered_by,
            cached=True,
            augmented_by=list(template.augmented_by),
        )

    def _fill(self, key: tuple, outcome: QueryOutcome, now: float) -> None:
        """Remember a fresh outcome (and subscribe to its invalidation)."""
        if outcome.intercepted:
            return
        host_ip = key[0]
        ready_at = now + outcome.latency
        if outcome.timed_out:
            if self.negative_ttl <= 0.0:
                return
            expires_at = ready_at + self.negative_ttl
            self._entries[key] = CacheEntry(
                key=key,
                host_ip=host_ip,
                outcome=outcome,
                ready_at=ready_at,
                expires_at=expires_at,
                negative=True,
                unreachable=outcome.unreachable,
                topology_epoch=self.client.topology.mutation_epoch,
            )
            heapq.heappush(self._deadlines, (expires_at, next(self._seq), key))
            return
        if self.ttl <= 0.0:
            return
        daemon = getattr(self.client.topology.node_for_ip(host_ip), "identpp_daemon", None)
        # Source answers name the one process that opened the flow, and
        # a destination answer may carry flow-published pairs or a
        # per-connection worker's identity: such entries serve only
        # their own flow.  A listener's flow-independent answer shares.
        flow_scoped = (
            outcome.query.target_role == ROLE_SOURCE
            or daemon is None
            or not daemon.answer_is_shareable(outcome.query)
        )
        expires_at = ready_at + self.ttl
        self._entries[key] = CacheEntry(
            key=key,
            host_ip=host_ip,
            outcome=outcome,
            ready_at=ready_at,
            expires_at=expires_at,
            flow_scoped=flow_scoped,
        )
        heapq.heappush(self._deadlines, (expires_at, next(self._seq), key))
        if daemon is not None:
            self._subscribe(host_ip, daemon)

    def _subscribe(self, host_ip: str, daemon) -> None:
        """Hook this engine into the answering daemon's invalidation fan-out."""
        ip = str(host_ip)
        if self._subscribed.get(ip) is daemon:
            return
        self._subscribed[ip] = daemon
        daemon.add_invalidation_listener(
            lambda reason, _ip=ip: self.invalidate_host(_ip, reason)
        )

    # ------------------------------------------------------------------
    # Invalidation + expiry
    # ------------------------------------------------------------------

    def invalidate_host(self, host_ip, reason: str = "") -> int:
        """Drop every entry (cached or in flight) for one host.

        Called by daemon-side events — runtime-key publishes, socket
        owner changes, spoofing, host compromise — and usable directly
        by an administrator.  Returns how many entries were removed.
        """
        ip = str(host_ip)
        stale = [key for key, entry in self._entries.items() if entry.host_ip == ip]
        for key in stale:
            del self._entries[key]
        self.invalidation_events += 1
        self.invalidated_entries += len(stale)
        return len(stale)

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        removed = len(self._entries)
        self._entries.clear()
        self._deadlines.clear()
        return removed

    def expire(self, now: float) -> int:
        """Reclaim entries past their TTL (lifecycle-sweep hook).

        Heap-driven: costs ``O(expired log n)``, not a full scan.
        Popped deadlines whose entry was already invalidated, refreshed
        or lookup-expired are skipped (lazy invalidation).
        """
        removed = 0
        heap = self._deadlines
        while heap and heap[0][0] <= now:
            due, _, key = heapq.heappop(heap)
            entry = self._entries.get(key)
            if entry is not None and entry.expires_at == due:
                del self._entries[key]
                removed += 1
        self.expirations += removed
        return removed

    def expirable_count(self) -> int:
        """Return how many entries a sweep could ever reclaim."""
        return len(self._entries)

    def next_expiry(self) -> Optional[float]:
        """Return the earliest live entry deadline (lifecycle scheduling hook)."""
        heap = self._deadlines
        while heap:
            due, _, key = heap[0]
            entry = self._entries.get(key)
            if entry is None or entry.expires_at != due:
                heapq.heappop(heap)
                continue
            return due
        return None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def lookups(self) -> int:
        """Return how many queries were requested through the engine."""
        return self.hits + self.misses + self.coalesced + self.negative_hits

    def telemetry_ratios(self) -> dict[str, float]:
        """Return just the hit/negative/coalesce ratios.

        The telemetry plane samples these every tick; :meth:`stats`
        builds a 17-key dict per call, which is report material, not
        probe material.
        """
        total = self.lookups()
        if not total:
            return {"hit_rate": 0.0, "negative_hit_rate": 0.0, "coalesce_rate": 0.0}
        return {
            "hit_rate": self.hits / total,
            "negative_hit_rate": self.negative_hits / total,
            "coalesce_rate": self.coalesced / total,
        }

    def stats(self) -> dict[str, object]:
        """Return headline numbers (surfaced by ``Controller.summary()``)."""
        total = self.lookups()

        def rate(count: int) -> float:
            return count / total if total else 0.0

        return {
            "enabled": self.enabled,
            "entries": len(self._entries),
            "lookups": total,
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "negative_hits": self.negative_hits,
            "interceptor_bypasses": self.interceptor_bypasses,
            "hit_rate": rate(self.hits),
            "coalesce_rate": rate(self.coalesced),
            "negative_hit_rate": rate(self.negative_hits),
            "invalidation_events": self.invalidation_events,
            "invalidated_entries": self.invalidated_entries,
            "expirations": self.expirations,
            "ttl": self.ttl,
            "negative_ttl": self.negative_ttl,
        }

    def __repr__(self) -> str:
        return (
            f"QueryEngine({self.name!r}, ttl={self.ttl}, "
            f"entries={len(self._entries)})"
        )
