"""ident++ daemon configuration files (the ``@app { ... }`` format).

Figures 3, 4 and 6 of the paper show end-host configuration files of the
form::

    @app /usr/bin/skype {
    name : skype
    version : 210
    vendor : skype.com
    type : voip
    requirements : \\
    pass from any port http \\
    with eq(@src[name], skype) \\
    pass from any port https \\
    with eq(@src[name], skype)
    req-sig : 21oir...w3eda
    }

Each ``@app`` block is keyed by the executable path; the daemon uses the
path of the process owning a queried flow to find the block whose
key/value pairs go into the response.  Values may span lines using
trailing-backslash continuation (used heavily for ``requirements``, which
hold PF+=2 rule text).  Lines outside any ``@app`` block are *global*
pairs reported for every flow (e.g. ``os-patch`` facts in Figure 8's
scenario).

Configuration files carry a provenance label ("system", "user",
"third-party:Secur", ...) because §3.5 distinguishes files "modifiable by
users" from those "only modifiable by the local end-host administrator",
and the daemon emits separate response sections per provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.exceptions import DaemonConfigError
from repro.identpp.keyvalue import KeyValueSection


@dataclass
class AppConfig:
    """The key/value pairs configured for one application (one ``@app`` block)."""

    path: str
    pairs: dict[str, str] = field(default_factory=dict)
    source: str = ""

    def get(self, key: str) -> Optional[str]:
        """Return the configured value for ``key``, or ``None``."""
        return self.pairs.get(key)

    def section(self) -> KeyValueSection:
        """Return the pairs as a response section labelled with the provenance."""
        label = f"{self.source or 'config'}:{self.path}"
        return KeyValueSection.from_dict(self.pairs, source=label)

    def __contains__(self, key: str) -> bool:
        return key in self.pairs


@dataclass
class DaemonConfigFile:
    """One parsed configuration file: global pairs plus per-application blocks."""

    source: str = ""
    global_pairs: dict[str, str] = field(default_factory=dict)
    app_configs: dict[str, AppConfig] = field(default_factory=dict)

    def app_for_path(self, path: str) -> Optional[AppConfig]:
        """Return the ``@app`` block for an executable path, or ``None``."""
        return self.app_configs.get(path)


def _join_continuations(text: str) -> list[str]:
    """Collapse trailing-backslash continuations into single logical lines."""
    logical: list[str] = []
    buffer = ""
    for raw_line in text.splitlines():
        line = raw_line.rstrip()
        if line.endswith("\\"):
            buffer += line[:-1].rstrip() + " "
            continue
        buffer += line
        logical.append(buffer)
        buffer = ""
    if buffer:
        logical.append(buffer)
    return logical


def _strip_comment(line: str) -> str:
    """Remove a ``#`` comment unless the ``#`` sits inside quotes."""
    in_quote = False
    for index, char in enumerate(line):
        if char == '"':
            in_quote = not in_quote
        elif char == "#" and not in_quote:
            return line[:index]
    return line


def parse_daemon_config(text: str, source: str = "") -> DaemonConfigFile:
    """Parse one configuration file in the Figure 3/4/6 format.

    Raises :class:`~repro.exceptions.DaemonConfigError` on malformed
    blocks (unterminated ``@app``, key lines without a colon, nesting).
    """
    config = DaemonConfigFile(source=source)
    current_app: Optional[AppConfig] = None
    for line_no, logical in enumerate(_join_continuations(text), start=1):
        line = _strip_comment(logical).strip()
        if not line:
            continue
        if line.startswith("@app"):
            if current_app is not None:
                raise DaemonConfigError(
                    f"{source}: nested @app block at line {line_no} "
                    f"(missing closing '}}' for {current_app.path})"
                )
            remainder = line[len("@app"):].strip()
            if not remainder.endswith("{"):
                raise DaemonConfigError(f"{source}: @app line must end with '{{' (line {line_no})")
            path = remainder[:-1].strip()
            if not path:
                raise DaemonConfigError(f"{source}: @app block without a path (line {line_no})")
            current_app = AppConfig(path=path, source=source)
            continue
        if line == "}":
            if current_app is None:
                raise DaemonConfigError(f"{source}: unexpected '}}' at line {line_no}")
            config.app_configs[current_app.path] = current_app
            current_app = None
            continue
        if ":" not in line:
            raise DaemonConfigError(f"{source}: malformed key-value line {line_no}: {logical!r}")
        key, _, value = line.partition(":")
        key = key.strip()
        value = value.strip()
        if not key:
            raise DaemonConfigError(f"{source}: empty key at line {line_no}")
        if current_app is not None:
            current_app.pairs[key] = value
        else:
            config.global_pairs[key] = value
    if current_app is not None:
        raise DaemonConfigError(f"{source}: unterminated @app block for {current_app.path}")
    return config


class DaemonConfig:
    """The full configuration of one ident++ daemon, across provenances.

    The daemon reads files from two well-known locations (§3.5): the
    system configuration directory (only the local administrator can
    write there) and the user's own configuration.  Provenance matters
    because the response places pairs from different sources in
    different sections.
    """

    #: Canonical provenance labels, in the order their sections appear in
    #: a response.
    PROVENANCES = ("system", "vendor", "third-party", "user")

    def __init__(self) -> None:
        self._files: list[DaemonConfigFile] = []

    def load(self, text: str, *, source: str = "system") -> DaemonConfigFile:
        """Parse and register a configuration file with the given provenance label."""
        parsed = parse_daemon_config(text, source=source)
        self._files.append(parsed)
        return parsed

    def add_file(self, config_file: DaemonConfigFile) -> None:
        """Register an already-parsed configuration file."""
        self._files.append(config_file)

    def files(self) -> Iterator[DaemonConfigFile]:
        """Iterate over registered files in load order."""
        return iter(list(self._files))

    def global_pairs(self) -> dict[str, str]:
        """Return merged global pairs (later files override earlier ones)."""
        merged: dict[str, str] = {}
        for config_file in self._files:
            merged.update(config_file.global_pairs)
        return merged

    def sections_for_path(self, path: str) -> list[KeyValueSection]:
        """Return every configured section that applies to an executable path.

        One section per file that has an ``@app`` block for the path, in
        load order, so a later (e.g. user-provided) file appears after an
        earlier (system) one — matching the "latest value wins" lookup.
        """
        sections = []
        for config_file in self._files:
            app = config_file.app_for_path(path)
            if app is not None:
                sections.append(app.section())
        return sections

    def app_config(self, path: str) -> Optional[AppConfig]:
        """Return the most recently loaded ``@app`` block for a path."""
        result = None
        for config_file in self._files:
            app = config_file.app_for_path(path)
            if app is not None:
                result = app
        return result

    def __len__(self) -> int:
        return len(self._files)
