"""Gluing ident++ responses to PF+=2 evaluation.

The policy engine owns the ``.control`` files (loaded through a
:class:`~repro.pf.ruleset.RulesetLoader`, i.e. concatenated in
alphabetical order), the PF+=2 evaluator built from them, the function
registry and the delegation manager whose public keys back
``@pubkeys[...]`` lookups.  Given a flow and the two ident++ response
documents it produces a :class:`PolicyDecision` that also says *whether*
the decision honoured delegated rules and on behalf of which principals
— which feeds the audit log and the delegation manager's per-grant
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.delegation import DelegationManager
from repro.identpp.flowspec import FlowSpec
from repro.identpp.keyvalue import ResponseDocument
from repro.pf.ast_nodes import ACTION_PASS, DictAccess, Rule
from repro.pf.evaluator import PolicyEvaluator, Verdict
from repro.pf.functions import FunctionRegistry, default_registry
from repro.pf.ruleset import RulesetLoader

#: Function names whose presence in the deciding rule marks the decision
#: as relying on delegated (externally supplied) rules.
DELEGATION_FUNCTIONS = ("allowed", "verify")


@dataclass
class PolicyDecision:
    """The outcome of running the policy over one flow."""

    flow: Optional[FlowSpec]
    verdict: Verdict
    delegated: bool = False
    delegation_functions: tuple[str, ...] = ()
    principals: tuple[str, ...] = ()
    src_keys: dict[str, str] = field(default_factory=dict)
    dst_keys: dict[str, str] = field(default_factory=dict)

    @property
    def action(self) -> str:
        """Return ``"pass"`` or ``"block"``."""
        return self.verdict.action

    @property
    def is_pass(self) -> bool:
        """Return ``True`` when the flow is allowed."""
        return self.verdict.is_pass

    @property
    def keep_state(self) -> bool:
        """Return ``True`` when the deciding rule asked for ``keep state``."""
        return self.verdict.keep_state

    @property
    def rule_text(self) -> str:
        """Return the deciding rule as text ('' when the PF default applied)."""
        return str(self.verdict.rule) if self.verdict.rule is not None else ""

    @property
    def rule_origin(self) -> str:
        """Return the configuration file the deciding rule came from."""
        return self.verdict.rule.origin if self.verdict.rule is not None else ""


class PolicyEngine:
    """The controller's policy: ``.control`` files + PF+=2 evaluator + delegation keys."""

    def __init__(
        self,
        *,
        registry: Optional[FunctionRegistry] = None,
        default_action: str = ACTION_PASS,
        delegations: Optional[DelegationManager] = None,
        name: str = "policy-engine",
    ) -> None:
        self.name = name
        self.loader = RulesetLoader()
        self.registry = registry if registry is not None else default_registry()
        self.default_action = default_action
        self.delegations = delegations if delegations is not None else DelegationManager()
        self._evaluator: Optional[PolicyEvaluator] = None
        self.decisions_made = 0
        self.batch_decisions = 0
        self.batches = 0
        self.pubkeys_refreshes = 0
        # (ruleset epoch, delegation epoch) the cached @pubkeys dict was
        # built for; either moving invalidates it.
        self._ruleset_epoch = 0
        self._pubkeys_state: Optional[tuple[int, int]] = None

    # ------------------------------------------------------------------
    # Configuration management
    # ------------------------------------------------------------------

    def add_control_file(self, name: str, text: str, *, provenance: str = "administrator") -> None:
        """Register (or replace) a ``.control`` file and rebuild the policy."""
        self.loader.add_file(name, text, provenance=provenance)
        self._evaluator = None

    def add_control_files(self, files: dict[str, str], *, provenance: str = "administrator") -> None:
        """Register several ``.control`` files at once."""
        for name, text in files.items():
            self.loader.add_file(name, text, provenance=provenance)
        self._evaluator = None

    def remove_control_file(self, name: str) -> bool:
        """Unregister a ``.control`` file (e.g. dropping a vendor's rules)."""
        removed = self.loader.remove_file(name)
        if removed:
            self._evaluator = None
        return removed

    def load_directory(self, path: str) -> int:
        """Load ``*.control`` files from a directory on disk."""
        count = self.loader.load_directory(path)
        self._evaluator = None
        return count

    def rebuild(self) -> PolicyEvaluator:
        """(Re)build the evaluator from the registered files."""
        ruleset = self.loader.build()
        self._evaluator = PolicyEvaluator(
            ruleset,
            registry=self.registry,
            default_action=self.default_action,
            name=self.name,
        )
        self._ruleset_epoch += 1
        return self._evaluator

    @property
    def evaluator(self) -> PolicyEvaluator:
        """Return the current evaluator, building it if needed."""
        if self._evaluator is None:
            self.rebuild()
        return self._evaluator

    @property
    def ruleset_epoch(self) -> int:
        """Return how many times the evaluator has been (re)built.

        Cluster coordinators compare this across replicas to verify a
        policy reload propagated everywhere.
        """
        return self._ruleset_epoch

    def rule_count(self) -> int:
        """Return the number of rules in the concatenated policy."""
        return len(self.evaluator.ruleset.rules())

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def decide(
        self,
        flow: Optional[FlowSpec],
        src_doc: Optional[ResponseDocument] = None,
        dst_doc: Optional[ResponseDocument] = None,
        *,
        extra: Optional[dict[str, object]] = None,
    ) -> PolicyDecision:
        """Evaluate the policy for one flow."""
        evaluator = self.evaluator
        self._refresh_pubkeys(evaluator)
        src_doc = src_doc if src_doc is not None else ResponseDocument()
        dst_doc = dst_doc if dst_doc is not None else ResponseDocument()
        verdict = evaluator.evaluate(flow, src_doc, dst_doc, extra=extra)
        self.decisions_made += 1
        return self._decision_from_verdict(flow, verdict, src_doc, dst_doc)

    def decide_batch(
        self,
        items: Sequence[tuple],
        *,
        extra: Optional[dict[str, object]] = None,
    ) -> list[PolicyDecision]:
        """Evaluate the policy for many ``(flow, src_doc, dst_doc)`` at once.

        The ``@pubkeys`` refresh and the evaluation context are paid once
        for the whole batch instead of once per flow.
        """
        evaluator = self.evaluator
        self._refresh_pubkeys(evaluator)
        if not isinstance(items, (list, tuple)):
            items = list(items)
        verdicts = evaluator.evaluate_batch(items, extra=extra)
        decisions: list[PolicyDecision] = []
        for (flow, src_doc, dst_doc), verdict in zip(items, verdicts):
            self.decisions_made += 1
            self.batch_decisions += 1
            decisions.append(self._decision_from_verdict(flow, verdict, src_doc, dst_doc))
        self.batches += 1
        return decisions

    def _refresh_pubkeys(self, evaluator: PolicyEvaluator) -> None:
        """Rebuild the evaluator's ``@pubkeys`` dict only when stale.

        Delegation grants back @pubkeys lookups; configuration-defined
        dict entries win over grants of the same name so an administrator
        can always pin a key explicitly.  The merged dict is invalidated
        by a new delegation epoch (grant/revoke) or an evaluator rebuild
        (ruleset change) rather than rebuilt on every decision.
        """
        state = (self._ruleset_epoch, self.delegations.epoch)
        if self._pubkeys_state == state:
            return
        pubkeys = dict(self.delegations.pubkeys_dict())
        defined = evaluator.ruleset.dicts().get("pubkeys")
        if defined is not None:
            pubkeys.update(defined.entries)
        evaluator.dicts["pubkeys"] = pubkeys
        self._pubkeys_state = state
        self.pubkeys_refreshes += 1

    def _decision_from_verdict(
        self,
        flow: Optional[FlowSpec],
        verdict: Verdict,
        src_doc: Optional[ResponseDocument],
        dst_doc: Optional[ResponseDocument],
    ) -> PolicyDecision:
        delegated_functions = _delegation_functions_used(verdict.rule)
        principals = _principals_used(verdict.rule)
        return PolicyDecision(
            flow=flow,
            verdict=verdict,
            delegated=bool(delegated_functions),
            delegation_functions=delegated_functions,
            principals=principals,
            src_keys=src_doc.as_flat_dict() if src_doc is not None else {},
            dst_keys=dst_doc.as_flat_dict() if dst_doc is not None else {},
        )

    def stats(self) -> dict[str, float]:
        """Return counters for reports, including compile/index/batch stats."""
        evaluator_stats = self.evaluator.stats()
        evaluator_stats["decisions_made"] = float(self.decisions_made)
        evaluator_stats["control_files"] = float(len(self.loader))
        evaluator_stats["batch_decisions"] = float(self.batch_decisions)
        evaluator_stats["decision_batches"] = float(self.batches)
        evaluator_stats["pubkeys_refreshes"] = float(self.pubkeys_refreshes)
        return evaluator_stats


def _delegation_functions_used(rule: Optional[Rule]) -> tuple[str, ...]:
    """Return which delegation functions appear in the deciding rule's conditions."""
    if rule is None:
        return ()
    used = []
    for condition in rule.conditions:
        if condition.name.lower() in DELEGATION_FUNCTIONS and condition.name.lower() not in used:
            used.append(condition.name.lower())
    return tuple(used)


def _principals_used(rule: Optional[Rule]) -> tuple[str, ...]:
    """Return the ``@pubkeys[...]`` principals referenced by the deciding rule."""
    if rule is None:
        return ()
    principals: list[str] = []
    for condition in rule.conditions:
        for argument in condition.args:
            if isinstance(argument, DictAccess) and argument.dict_name == "pubkeys":
                if argument.key not in principals:
                    principals.append(argument.key)
    return tuple(principals)
