"""Flow-state lifecycle: reclaiming decision state under churn.

The ident++ design caches every decision in three places — the
controller :class:`~repro.core.cache.DecisionCache`, the ``keep state``
:class:`~repro.pf.state.StateTable` and the switch flow tables (§3.1's
"the flow table ... is also the ident++ decision cache").  At enterprise
scale those caches see heavy churn: short-lived flows arrive far faster
than their TTLs expire, so without an explicit lifecycle the working set
grows without bound and a long-running controller eventually holds state
for millions of dead flows.

This module provides the two pieces that keep state bounded:

* :class:`ExpiryHeap` — a lazily-invalidated min-heap of deadlines, so
  sweeping a cache costs ``O(expired log n)`` instead of a full scan;
* :class:`LifecycleService` — a sweep scheduler that periodically runs
  every registered reclaimer (decision cache, state table, per-switch
  flow tables, stale pending punts) while there is state left to
  reclaim, then goes quiet so the event queue can drain.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.events import RepeatingEvent, Simulator

#: How often the lifecycle sweeps when enabled, seconds of simulated time.
DEFAULT_SWEEP_INTERVAL = 1.0


class ExpiryHeap:
    """A min-heap of ``(due, key, token)`` deadlines with lazy invalidation.

    Owners push a deadline whenever they (re)insert an entry; a refreshed
    or replaced entry simply pushes a new deadline and leaves the old one
    in the heap.  :meth:`pop_due` therefore yields *candidates*: the
    owner must check the entry is still the one the deadline was pushed
    for (the ``token``, typically the decision cookie) before evicting.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, tuple[object, object]]] = []
        # Insertion-order tiebreaker keeps equal-deadline pops deterministic.
        self._seq = itertools.count()

    def push(self, due: float, key: object, token: object = None) -> None:
        """Register that ``key`` (qualified by ``token``) expires at ``due``."""
        heapq.heappush(self._heap, (due, next(self._seq), (key, token)))

    def pop_due(self, now: float) -> Iterator[tuple[object, object]]:
        """Yield and remove every ``(key, token)`` whose deadline has passed."""
        heap = self._heap
        while heap and heap[0][0] <= now:
            _, _, payload = heapq.heappop(heap)
            yield payload

    def next_due(self) -> Optional[float]:
        """Return the earliest pending deadline (stale ones included)."""
        return self._heap[0][0] if self._heap else None

    def clear(self) -> None:
        """Drop all deadlines."""
        self._heap.clear()

    def __len__(self) -> int:
        return len(self._heap)


class LifecycleService:
    """Periodic reclamation across every cache a controller owns.

    Reclaimers register as ``(label, sweep, reclaimable[, next_deadline])``
    where ``sweep(now)`` removes expired entries and returns how many it
    dropped, and ``reclaimable()`` reports how many entries a *future*
    sweep could still remove (entries without any timeout must not be
    counted, or the service would tick forever over state that can never
    expire and an unbounded ``Simulator.run()`` would never drain).
    While attached to a simulator with a positive ``interval``, the
    service keeps sweeping for as long as any reclaimer reports
    reclaimable state; once nothing is left to expire it deschedules
    itself (so an idle simulation can finish) and is re-armed by the
    next :meth:`kick`.

    The optional ``next_deadline()`` hint returns the earliest moment a
    reclaimer's state can expire (or ``None`` for "unknown").  When every
    reclaimer that still holds state provides one, the service sleeps
    straight to the earliest deadline instead of polling every
    ``interval`` — so a ``keep state`` table with a 300 s timeout costs
    one wake-up, not three thousand.  A stale (too early) hint merely
    causes one extra no-op sweep.

    With ``interval == 0`` nothing is ever scheduled; :meth:`sweep` can
    still be called manually, which is what the soak harness does.
    """

    def __init__(self, name: str = "lifecycle", *, interval: float = DEFAULT_SWEEP_INTERVAL) -> None:
        self.name = name
        self.interval = interval
        self._targets: list[
            tuple[
                str,
                Callable[[float], int],
                Callable[[], int],
                Optional[Callable[[], Optional[float]]],
            ]
        ] = []
        self._sim: Optional["Simulator"] = None
        self._ticker: Optional["RepeatingEvent"] = None
        self.sweeps = 0
        self.reclaimed: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def register(
        self,
        label: str,
        sweep: Callable[[float], int],
        reclaimable: Callable[[], int],
        next_deadline: Optional[Callable[[], Optional[float]]] = None,
    ) -> None:
        """Add one reclaimer (idempotent per label; later wins)."""
        self._targets = [t for t in self._targets if t[0] != label]
        self._targets.append((label, sweep, reclaimable, next_deadline))
        self.reclaimed.setdefault(label, 0)

    def attach(self, sim: "Simulator") -> None:
        """Bind to a simulator clock (sweeps are scheduled on :meth:`kick`)."""
        self._sim = sim

    @property
    def enabled(self) -> bool:
        """Return ``True`` when periodic sweeping is configured."""
        return self.interval > 0 and self._sim is not None

    @property
    def scheduled(self) -> bool:
        """Return ``True`` while a sweep is queued on the simulator."""
        return self._ticker is not None and self._ticker.scheduled

    def kick(self) -> None:
        """Ensure a sweep is queued (no-op when disabled or already queued)."""
        if not self.enabled or self.scheduled:
            return
        if self._ticker is None:
            self._ticker = self._sim.schedule_repeating(
                self.interval, self._tick, label=f"{self.name}:sweep"
            )
        else:
            # _tick may have stretched the delay toward a far deadline;
            # a fresh kick means fresh state, so restart at the base rate.
            self._ticker.interval = self.interval
            self._ticker.start()

    def stop(self) -> None:
        """Cancel the queued sweep, if any."""
        if self._ticker is not None:
            self._ticker.cancel()

    # ------------------------------------------------------------------
    # Sweeping
    # ------------------------------------------------------------------

    def sweep(self, now: float) -> dict[str, int]:
        """Run every reclaimer once; returns per-label counts for this sweep."""
        self.sweeps += 1
        dropped: dict[str, int] = {}
        for label, sweep_fn, _, _ in self._targets:
            count = int(sweep_fn(now))
            dropped[label] = count
            self.reclaimed[label] = self.reclaimed.get(label, 0) + count
        return dropped

    def reclaimable_state(self) -> int:
        """Return how many entries future sweeps could still remove."""
        return sum(reclaimable() for _, _, reclaimable, _ in self._targets)

    def _next_delay(self, now: float) -> float:
        """Return how long to sleep before the next sweep.

        Falls back to the fixed ``interval`` as soon as one reclaimer
        with reclaimable state cannot say when it next expires.
        """
        earliest: Optional[float] = None
        for _, _, reclaimable, next_deadline in self._targets:
            if reclaimable() <= 0:
                continue
            due = next_deadline() if next_deadline is not None else None
            if due is None:
                return self.interval
            if earliest is None or due < earliest:
                earliest = due
        if earliest is None:
            return self.interval
        return max(self.interval, earliest - now)

    def _tick(self) -> bool:
        assert self._sim is not None
        now = self._sim.now
        self.sweep(now)
        # Keep ticking only while a future sweep can actually reclaim
        # something; otherwise go quiet and wait for the next kick().
        # Keying on raw entry counts instead would spin forever over
        # timeout-less state and hang an unbounded Simulator.run().
        if self.reclaimable_state() <= 0:
            return False
        if self._ticker is not None:
            # Sleep straight to the earliest known deadline rather than
            # polling: the ticker re-reads its interval on reschedule.
            self._ticker.interval = self._next_delay(now)
        return True

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def total_reclaimed(self) -> int:
        """Return how many entries all sweeps together removed."""
        return sum(self.reclaimed.values())

    def stats(self) -> dict[str, object]:
        """Return the service's counters (wired into controller summaries)."""
        return {
            "interval": self.interval,
            "enabled": self.enabled,
            "scheduled": self.scheduled,
            "sweeps": self.sweeps,
            "reclaimed": dict(self.reclaimed),
            "reclaimed_total": self.total_reclaimed(),
            "reclaimable_entries": self.reclaimable_state(),
        }
