"""Controller-side decision cache.

Switch flow tables already cache decisions in the datapath (§3.1); the
controller additionally keeps its own cache so that

* a second switch on the same path punting the same flow (before its
  entry arrives) does not trigger a second round of ident++ queries, and
* the reverse direction of a ``keep state`` flow is approved without
  re-querying.

Entries carry the decision's cookie so revocation can drop exactly the
affected cache lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.identpp.flowspec import FlowSpec
from repro.pf.state import StateTable

#: Default lifetime of a cached controller decision, in seconds.
DEFAULT_DECISION_TTL = 60.0


@dataclass
class CachedDecision:
    """One cached allow/deny decision."""

    flow: FlowSpec
    action: str
    cookie: str
    decided_at: float
    keep_state: bool = False
    rule_text: str = ""

    @property
    def is_pass(self) -> bool:
        """Return ``True`` for allow decisions."""
        return self.action == "pass"


class DecisionCache:
    """Flow → decision cache with TTL plus the ``keep state`` table."""

    def __init__(self, *, ttl: float = DEFAULT_DECISION_TTL) -> None:
        self.ttl = ttl
        self._decisions: dict[FlowSpec, CachedDecision] = {}
        # How many cached entries can cover reverse traffic (keep state
        # passes); while zero, misses skip building the reversed FlowSpec.
        self._reverse_candidates = 0
        # cookie -> flows carrying it, so revocation is O(affected flows)
        # instead of a scan over the whole cache.
        self._by_cookie: dict[str, set[FlowSpec]] = {}
        self.state_table = StateTable()
        self.hits = 0
        self.misses = 0

    def store(
        self,
        flow: FlowSpec,
        action: str,
        cookie: str,
        now: float,
        *,
        keep_state: bool = False,
        rule_text: str = "",
    ) -> CachedDecision:
        """Cache a decision (and create state for ``keep state`` passes)."""
        decision = CachedDecision(
            flow=flow,
            action=action,
            cookie=cookie,
            decided_at=now,
            keep_state=keep_state,
            rule_text=rule_text,
        )
        self._drop_entry_bookkeeping(self._decisions.get(flow))
        self._decisions[flow] = decision
        self._by_cookie.setdefault(cookie, set()).add(flow)
        if keep_state and action == "pass":
            self._reverse_candidates += 1
            self.state_table.add(flow, now, rule_origin=rule_text, cookie=cookie)
        return decision

    def lookup(self, flow: FlowSpec, now: float) -> Optional[CachedDecision]:
        """Return the cached decision covering ``flow``, if still valid.

        A ``keep state`` pass decision also covers the reverse direction
        of the flow.
        """
        decision = self._decisions.get(flow)
        if decision is not None and (not self.ttl or now - decision.decided_at <= self.ttl):
            self.hits += 1
            return decision
        # Reverse direction of an established (keep state) flow.  Building
        # the reversed FlowSpec costs an allocation, so skip it entirely
        # while no keep-state pass entry exists.
        if self._reverse_candidates:
            reverse = self._decisions.get(flow.reversed())
            if (
                reverse is not None
                and reverse.keep_state
                and reverse.is_pass
                and (not self.ttl or now - reverse.decided_at <= self.ttl)
            ):
                self.hits += 1
                return reverse
        self.misses += 1
        return None

    def invalidate(self, flow: FlowSpec) -> bool:
        """Drop the cached decision for ``flow`` (exact direction)."""
        decision = self._decisions.pop(flow, None)
        if decision is None:
            return False
        self._drop_entry_bookkeeping(decision)
        return True

    def invalidate_cookie(self, cookie: str) -> int:
        """Drop every cached decision (and state) carrying ``cookie``; returns the count.

        Uses the cookie index, so the cost is proportional to the number
        of affected flows, not the size of the cache.
        """
        victims = self._by_cookie.pop(cookie, None) or ()
        count = 0
        for flow in victims:
            decision = self._decisions.pop(flow, None)
            if decision is None:
                continue
            count += 1
            if decision.keep_state and decision.is_pass:
                self._reverse_candidates -= 1
        self.state_table.remove_by_cookie(cookie)
        return count

    def _drop_entry_bookkeeping(self, decision: Optional[CachedDecision]) -> None:
        """Unwind the counters/index for an entry leaving the cache."""
        if decision is None:
            return
        if decision.keep_state and decision.is_pass:
            self._reverse_candidates -= 1
        flows = self._by_cookie.get(decision.cookie)
        if flows is not None:
            flows.discard(decision.flow)
            if not flows:
                del self._by_cookie[decision.cookie]

    def clear(self) -> None:
        """Drop everything."""
        self._decisions.clear()
        self._by_cookie.clear()
        self._reverse_candidates = 0
        self.state_table = StateTable()

    def hit_rate(self) -> float:
        """Return hits / (hits + misses)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._decisions)

    def __contains__(self, flow: FlowSpec) -> bool:
        return flow in self._decisions
