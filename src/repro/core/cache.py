"""Controller-side decision cache.

Switch flow tables already cache decisions in the datapath (§3.1); the
controller additionally keeps its own cache so that

* a second switch on the same path punting the same flow (before its
  entry arrives) does not trigger a second round of ident++ queries, and
* the reverse direction of a ``keep state`` flow is approved without
  re-querying.

Entries carry the decision's cookie so revocation can drop exactly the
affected cache lines.

The cache's lifetime story is explicit: TTL-expired entries are evicted
lazily on lookup *and* eagerly by :meth:`DecisionCache.expire` (driven
by the :class:`~repro.core.lifecycle.LifecycleService` through an
:class:`~repro.core.lifecycle.ExpiryHeap`, so a sweep costs
``O(expired log n)`` rather than a scan).  An optional ``capacity``
bounds the entry count with LRU eviction, which is what lets a
controller survive adversarial flow churn with a fixed memory budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.lifecycle import ExpiryHeap
from repro.identpp.flowspec import FlowSpec
from repro.pf.state import StateTable

#: Default lifetime of a cached controller decision, in seconds.
DEFAULT_DECISION_TTL = 60.0


@dataclass
class CachedDecision:
    """One cached allow/deny decision."""

    flow: FlowSpec
    action: str
    cookie: str
    decided_at: float
    keep_state: bool = False
    rule_text: str = ""

    @property
    def is_pass(self) -> bool:
        """Return ``True`` for allow decisions."""
        return self.action == "pass"


class DecisionCache:
    """Flow → decision cache with TTL, LRU bound, plus the ``keep state`` table."""

    def __init__(
        self,
        *,
        ttl: float = DEFAULT_DECISION_TTL,
        capacity: Optional[int] = None,
    ) -> None:
        self.ttl = ttl
        self.capacity = capacity
        # Insertion order doubles as recency order: hits under a capacity
        # bound reinsert the entry, so the head is always the LRU victim.
        self._decisions: dict[FlowSpec, CachedDecision] = {}
        # How many cached entries can cover reverse traffic (keep state
        # passes); while zero, misses skip building the reversed FlowSpec.
        self._reverse_candidates = 0
        # cookie -> flows carrying it, so revocation is O(affected flows)
        # instead of a scan over the whole cache.
        self._by_cookie: dict[str, set[FlowSpec]] = {}
        # (decided_at + ttl, flow, cookie) deadlines; stale records are
        # skipped at pop time by re-checking the live entry's cookie.
        self._expiry = ExpiryHeap()
        self.state_table = StateTable()
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.evictions = 0

    def store(
        self,
        flow: FlowSpec,
        action: str,
        cookie: str,
        now: float,
        *,
        keep_state: bool = False,
        rule_text: str = "",
    ) -> CachedDecision:
        """Cache a decision (and create state for ``keep state`` passes)."""
        decision = CachedDecision(
            flow=flow,
            action=action,
            cookie=cookie,
            decided_at=now,
            keep_state=keep_state,
            rule_text=rule_text,
        )
        previous = self._decisions.pop(flow, None)
        self._drop_entry_bookkeeping(previous)
        self._decisions[flow] = decision
        self._by_cookie.setdefault(cookie, set()).add(flow)
        if self.ttl:
            # Drain due/stale heap records opportunistically so the heap
            # stays bounded by the TTL window even when nothing ever
            # calls expire() (lifecycle sweeps disabled).  Runs before
            # the push, so the fresh record cannot be considered.
            self.expire(now)
            self._expiry.push(now + self.ttl, flow, cookie)
        if keep_state and action == "pass":
            self._reverse_candidates += 1
            self.state_table.add(flow, now, rule_origin=rule_text, cookie=cookie)
        if self.capacity is not None:
            while len(self._decisions) > self.capacity:
                self._evict_lru()
        return decision

    def lookup(self, flow: FlowSpec, now: float) -> Optional[CachedDecision]:
        """Return the cached decision covering ``flow``, if still valid.

        A ``keep state`` pass decision also covers the reverse direction
        of the flow.  TTL-expired entries found on the way are evicted
        immediately (with their cookie-index and reverse-candidate
        bookkeeping unwound) rather than left to rot.
        """
        decision = self._decisions.get(flow)
        if decision is not None:
            if self._fresh(decision, now):
                return self._hit(flow, decision)
            self._expire_entry(flow, decision)
        # Reverse direction of an established (keep state) flow.  Building
        # the reversed FlowSpec costs an allocation, so skip it entirely
        # while no keep-state pass entry exists.
        if self._reverse_candidates:
            reverse_flow = flow.reversed()
            reverse = self._decisions.get(reverse_flow)
            if reverse is not None and not self._fresh(reverse, now):
                self._expire_entry(reverse_flow, reverse)
                reverse = None
            if reverse is not None and reverse.keep_state and reverse.is_pass:
                return self._hit(reverse_flow, reverse)
        self.misses += 1
        return None

    def _fresh(self, decision: CachedDecision, now: float) -> bool:
        return not self.ttl or now - decision.decided_at <= self.ttl

    def _hit(self, flow: FlowSpec, decision: CachedDecision) -> CachedDecision:
        self.hits += 1
        if self.capacity is not None:
            # Refresh recency so hot flows survive LRU pressure.
            self._decisions.pop(flow)
            self._decisions[flow] = decision
        return decision

    def invalidate(self, flow: FlowSpec) -> bool:
        """Drop the cached decision for ``flow`` (exact direction)."""
        decision = self._decisions.pop(flow, None)
        if decision is None:
            return False
        self._drop_entry_bookkeeping(decision)
        return True

    def cookies_for_host(self, host_ip) -> set[str]:
        """Return the cookies of cached decisions touching ``host_ip``.

        The quarantine path uses this to revoke every decision a
        compromised host is party to — as source *or* destination — in
        one pass; cookie-indexed revocation then does the per-flow work.
        """
        target = str(host_ip)
        return {
            decision.cookie
            for flow, decision in self._decisions.items()
            if str(flow.src_ip) == target or str(flow.dst_ip) == target
        }

    def invalidate_cookie(self, cookie: str) -> int:
        """Drop every cached decision (and state) carrying ``cookie``; returns the count.

        Uses the cookie index, so the cost is proportional to the number
        of affected flows, not the size of the cache.
        """
        victims = self._by_cookie.pop(cookie, None) or ()
        count = 0
        for flow in victims:
            decision = self._decisions.pop(flow, None)
            if decision is None:
                continue
            count += 1
            if decision.keep_state and decision.is_pass:
                self._reverse_candidates -= 1
        self.state_table.remove_by_cookie(cookie)
        return count

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def expire(self, now: float) -> int:
        """Evict every TTL-expired decision; returns how many were dropped.

        Driven by the deadline heap: each pop is validated against the
        live entry (same flow *and* cookie, still past its TTL) so stale
        heap records from refreshed entries are skipped harmlessly.
        """
        if not self.ttl:
            return 0
        dropped = 0
        for flow, cookie in self._expiry.pop_due(now):
            decision = self._decisions.get(flow)
            if decision is None or decision.cookie != cookie:
                continue  # refreshed, invalidated or already evicted
            if decision.decided_at + self.ttl > now:
                # Refreshed in place under the same cookie: the refreshing
                # store pushed a newer deadline, so dropping this record is
                # safe.  Strictly greater, not >=, or an entry whose
                # deadline falls exactly on a sweep instant would consume
                # its only record while still "fresh" and live forever.
                continue
            self._expire_entry(flow, decision)
            dropped += 1
        return dropped

    def expirable_count(self) -> int:
        """Return how many TTL deadlines are still pending.

        Counts heap records (an upper bound on live expirable entries:
        refreshed/invalidated entries leave stale records behind until
        their deadline passes).  Zero means no future sweep can reclaim
        anything, which is what lets the lifecycle service go quiet.
        """
        return len(self._expiry) if self.ttl else 0

    def next_expiry(self) -> Optional[float]:
        """Return the earliest pending TTL deadline (``None`` when idle).

        May be stale (a refreshed entry's old record), in which case the
        lifecycle sweep it schedules is simply a no-op.
        """
        return self._expiry.next_due() if self.ttl else None

    def _expire_entry(self, flow: FlowSpec, decision: CachedDecision) -> None:
        self._decisions.pop(flow, None)
        self._drop_entry_bookkeeping(decision)
        self.expirations += 1

    def _evict_lru(self) -> None:
        victim_flow = next(iter(self._decisions))
        victim = self._decisions.pop(victim_flow)
        self._drop_entry_bookkeeping(victim)
        self.evictions += 1

    def _drop_entry_bookkeeping(self, decision: Optional[CachedDecision]) -> None:
        """Unwind the counters/index for an entry leaving the cache."""
        if decision is None:
            return
        if decision.keep_state and decision.is_pass:
            self._reverse_candidates -= 1
        flows = self._by_cookie.get(decision.cookie)
        if flows is not None:
            flows.discard(decision.flow)
            if not flows:
                del self._by_cookie[decision.cookie]

    def clear(self) -> None:
        """Drop everything (the configured state timeout survives)."""
        self._decisions.clear()
        self._by_cookie.clear()
        self._expiry.clear()
        self._reverse_candidates = 0
        self.state_table = StateTable(timeout=self.state_table.timeout)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def hit_rate(self) -> float:
        """Return hits / (hits + misses)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        """Return the cache's counters (wired into controller summaries)."""
        return {
            "entries": float(len(self._decisions)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hit_rate(),
            "expirations": float(self.expirations),
            "evictions": float(self.evictions),
            "reverse_candidates": float(self._reverse_candidates),
            "pending_deadlines": float(len(self._expiry)),
        }

    def __len__(self) -> int:
        return len(self._decisions)

    def __contains__(self, flow: FlowSpec) -> bool:
        return flow in self._decisions
