"""Convenience builder for ident++-protected OpenFlow networks.

Assembling a scenario by hand means creating a topology, switches, end
hosts, daemons, a policy engine and a controller and wiring them all
together.  :class:`IdentPPNetwork` does that in a few lines::

    net = IdentPPNetwork("demo")
    sw = net.add_switch("sw1")
    client = net.add_host(HostSpec(name="client", ip="192.168.0.10"), switch=sw)
    server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=sw)
    net.set_policy({"00-policy.control": "block all\\npass from any to any keep state"})
    result = net.send_flow("client", "http", "alice", server.ip, 80)

It supports multiple controllers (multi-domain topologies for the
network-collaboration experiment), hosts without daemons (legacy hosts
for the incremental-deployment experiment) and per-host daemon
configuration files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.cluster.cluster import ControllerCluster
from repro.core.controller import ControllerConfig, IdentPPController
from repro.core.policy_engine import PolicyEngine
from repro.exceptions import TopologyError
from repro.hosts.applications import Application, standard_applications
from repro.hosts.endhost import EndHost
from repro.identpp.daemon import IdentPPDaemon
from repro.identpp.flowspec import FlowSpec
from repro.netsim.addresses import IPv4Address
from repro.netsim.fabrics import (
    FatTreeFabric,
    SpineLeafFabric,
    build_fat_tree,
    build_spine_leaf,
)
from repro.netsim.links import DEFAULT_BANDWIDTH, DEFAULT_LATENCY
from repro.netsim.topology import Topology
from repro.openflow.switch import OpenFlowSwitch


@dataclass
class HostSpec:
    """Everything needed to stand up one end-host.

    Attributes:
        name: Node name.
        ip: The host's IPv4 address.
        users: Mapping of user name → group names to create.
        applications: Applications to install; ``None`` installs the
            standard catalogue used by the paper's examples.
        run_daemon: Whether the host runs an ident++ daemon (legacy hosts
            set this to ``False``).
        host_facts: Host-level facts the daemon reports (``os-patch`` ...).
        daemon_system_configs: ``@app`` configuration texts loaded into the
            daemon's system (administrator-owned) configuration.
        daemon_user_configs: ``@app`` configuration texts loaded into the
            daemon's user-owned configuration.
    """

    name: str
    ip: str
    users: dict[str, tuple[str, ...]] = field(default_factory=dict)
    applications: Optional[list[Application]] = None
    run_daemon: bool = True
    host_facts: dict[str, str] = field(default_factory=dict)
    daemon_system_configs: list[str] = field(default_factory=list)
    daemon_user_configs: list[str] = field(default_factory=list)


@dataclass
class FlowResult:
    """The observable outcome of sending one flow through the network."""

    flow: FlowSpec
    delivered: bool
    setup_latency: Optional[float]
    decision_action: Optional[str]
    decision_rule: str = ""


class IdentPPNetwork:
    """A complete ident++-protected OpenFlow network."""

    def __init__(
        self,
        name: str = "identpp-net",
        *,
        link_latency: float = DEFAULT_LATENCY,
        link_bandwidth: Optional[float] = DEFAULT_BANDWIDTH,
        controller_config: Optional[ControllerConfig] = None,
        policy_default_action: str = "pass",
        create_default_controller: bool = True,
    ) -> None:
        self.name = name
        self.link_latency = link_latency
        self.link_bandwidth = link_bandwidth
        self.topology = Topology(name=f"{name}.topology")
        self.controllers: dict[str, IdentPPController] = {}
        self.hosts: dict[str, EndHost] = {}
        self.switches: dict[str, OpenFlowSwitch] = {}
        self.daemons: dict[str, IdentPPDaemon] = {}
        self.cluster: Optional[ControllerCluster] = None
        self.controller: Optional[IdentPPController] = None
        # The telemetry plane, once enable_telemetry() assembles one.
        self.telemetry = None
        # Networks fronted by a cluster (or an explicit controller list)
        # pass False so summaries don't carry a dead unsharded controller.
        if create_default_controller:
            self.controller = self.add_controller(
                f"{name}.controller",
                config=controller_config,
                policy_default_action=policy_default_action,
            )

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------

    def add_controller(
        self,
        name: str,
        *,
        config: Optional[ControllerConfig] = None,
        policy_default_action: str = "pass",
    ) -> IdentPPController:
        """Create an additional controller (multi-domain scenarios)."""
        engine = PolicyEngine(default_action=policy_default_action, name=f"{name}.policy")
        controller = IdentPPController(name, self.topology, engine, config=config)
        self.controllers[name] = controller
        return controller

    def add_cluster(
        self,
        name: Optional[str] = None,
        *,
        shards: int = 2,
        config: Optional[ControllerConfig] = None,
        policy_default_action: str = "pass",
        **cluster_kwargs,
    ) -> ControllerCluster:
        """Front the network with a sharded controller cluster.

        Must run before any switch is added: switches are registered
        with their controllers at creation time.  Subsequent
        :meth:`add_switch` calls (without an explicit ``controller``)
        register with every shard, and :meth:`set_policy` propagates
        through the cluster coordinator.
        """
        if self.cluster is not None:
            raise TopologyError(f"network {self.name} already has a cluster")
        if self.controller is not None:
            # Mixing a cluster with the eagerly-created default controller
            # would leave a dead unsharded controller in summaries and a
            # net.controller that silently handles nothing.
            raise TopologyError(
                f"network {self.name} already has a default controller; "
                "build with create_default_controller=False (or use "
                "IdentPPClusterNetwork)"
            )
        if self.switches:
            raise TopologyError(
                "add_cluster must be called before switches are added "
                f"(network {self.name} already has {len(self.switches)})"
            )
        cluster = ControllerCluster(
            name if name is not None else f"{self.name}.cluster",
            self.topology,
            shards=shards,
            config=config,
            policy_default_action=policy_default_action,
            **cluster_kwargs,
        )
        self.cluster = cluster
        self.controllers.update(cluster.replicas)
        return cluster

    def add_switch(
        self,
        name: str,
        *,
        controller: Optional[IdentPPController] = None,
        table_capacity: Optional[int] = None,
    ) -> OpenFlowSwitch:
        """Create a switch, add it to the topology and register it with a controller."""
        switch = OpenFlowSwitch(name, table_capacity=table_capacity, trace=self.topology.trace)
        self.topology.add_node(switch)
        self._register_switch(switch, controller)
        return switch

    def _register_switch(
        self, switch: OpenFlowSwitch, controller: Optional[IdentPPController]
    ) -> None:
        """Register an already-placed switch with the control plane."""
        if controller is not None:
            controller.register_switch(switch)
        elif self.cluster is not None:
            self.cluster.register_switch(switch)
        else:
            self._default_controller().register_switch(switch)
        self.switches[switch.name] = switch

    def add_spine_leaf_fabric(
        self,
        *,
        spines: int = 2,
        leaves: int = 4,
        prefix: str = "fabric",
        controller: Optional[IdentPPController] = None,
        table_capacity: Optional[int] = None,
    ) -> SpineLeafFabric:
        """Grow a spine-leaf enforcement fabric inside this network.

        Every switch is an :class:`OpenFlowSwitch` registered with the
        control plane (the explicit ``controller``, the cluster, or the
        default controller), so punts, path-wide installs and
        ``FlowRemoved``-driven unwinding work across every hop.  Attach
        hosts to ``fabric.leaves`` entries with :meth:`add_host`.
        """
        fabric = build_spine_leaf(
            self._fabric_switch_factory(table_capacity),
            spines=spines,
            leaves=leaves,
            topology=self.topology,
            prefix=prefix,
            latency=self.link_latency,
            bandwidth=self.link_bandwidth,
        )
        for switch in fabric.switches():
            self._register_switch(switch, controller)
        return fabric

    def add_fat_tree_fabric(
        self,
        *,
        k: int = 4,
        prefix: str = "ft",
        controller: Optional[IdentPPController] = None,
        table_capacity: Optional[int] = None,
    ) -> FatTreeFabric:
        """Grow a k-ary fat-tree enforcement fabric inside this network.

        Same registration semantics as :meth:`add_spine_leaf_fabric`;
        attach hosts to the edge switches (``fabric.pod_edges(pod)``).
        """
        fabric = build_fat_tree(
            self._fabric_switch_factory(table_capacity),
            k=k,
            topology=self.topology,
            prefix=prefix,
            latency=self.link_latency,
            bandwidth=self.link_bandwidth,
        )
        for switch in fabric.switches():
            self._register_switch(switch, controller)
        return fabric

    def _fabric_switch_factory(self, table_capacity: Optional[int]):
        """Return the switch factory the netsim fabric builders call."""
        def factory(name: str) -> OpenFlowSwitch:
            return OpenFlowSwitch(
                name, table_capacity=table_capacity, trace=self.topology.trace
            )
        return factory

    def add_host(
        self,
        spec: HostSpec,
        *,
        switch: Optional[OpenFlowSwitch | str] = None,
        link_latency: Optional[float] = None,
    ) -> EndHost:
        """Create an end-host (optionally with a daemon) and attach it to a switch."""
        host = EndHost(spec.name, spec.ip)
        self.topology.add_node(host)
        self.topology.register_ip(spec.ip, host)
        host.install_all(spec.applications if spec.applications is not None else standard_applications())
        for user_name, groups in spec.users.items():
            host.add_user(user_name, groups)
        if spec.run_daemon:
            daemon = IdentPPDaemon(host, host_facts=spec.host_facts)
            for text in spec.daemon_system_configs:
                daemon.load_system_config(text)
            for text in spec.daemon_user_configs:
                daemon.load_user_config(text)
            self.daemons[spec.name] = daemon
        self.hosts[spec.name] = host
        if switch is not None:
            self.connect(host, switch, latency=link_latency)
        return host

    def connect(
        self,
        node_a: EndHost | OpenFlowSwitch | str,
        node_b: EndHost | OpenFlowSwitch | str,
        *,
        latency: Optional[float] = None,
        bandwidth: Optional[float] = None,
    ):
        """Link two nodes (hosts or switches) together."""
        return self.topology.add_link(
            self._resolve(node_a),
            self._resolve(node_b),
            latency=latency if latency is not None else self.link_latency,
            bandwidth=bandwidth if bandwidth is not None else self.link_bandwidth,
        )

    def _resolve(self, node):
        if isinstance(node, str):
            if node in self.hosts:
                return self.hosts[node]
            if node in self.switches:
                return self.switches[node]
            return self.topology.node(node)
        return node

    # ------------------------------------------------------------------
    # Policy
    # ------------------------------------------------------------------

    def set_policy(
        self,
        files: dict[str, str],
        *,
        controller: Optional[IdentPPController] = None,
        provenance: str = "administrator",
    ) -> None:
        """Register ``.control`` files on a controller (default: the primary
        one, or every cluster shard via the coordinator)."""
        if controller is not None:
            controller.policy.add_control_files(files, provenance=provenance)
        elif self.cluster is not None:
            self.cluster.set_policy(files, provenance=provenance)
        else:
            self._default_controller().policy.add_control_files(
                files, provenance=provenance
            )

    def _default_controller(self) -> IdentPPController:
        """Return the default controller, or fail with a useful message."""
        if self.controller is None:
            raise TopologyError(
                f"network {self.name} has no default controller; pass one "
                "explicitly or use the cluster"
            )
        return self.controller

    # ------------------------------------------------------------------
    # Driving traffic
    # ------------------------------------------------------------------

    def host(self, name: str) -> EndHost:
        """Return a host by name."""
        try:
            return self.hosts[name]
        except KeyError as exc:
            raise TopologyError(f"unknown host: {name}") from exc

    def daemon(self, host_name: str) -> IdentPPDaemon:
        """Return the daemon of a host."""
        try:
            return self.daemons[host_name]
        except KeyError as exc:
            raise TopologyError(f"host {host_name} does not run an ident++ daemon") from exc

    def enable_telemetry(self, **plane_kwargs):
        """Assemble (and return) a telemetry plane over this network.

        Call after the topology is built — probes are wired against the
        controllers and switches that exist now.  Start sampling with
        ``net.telemetry.start()`` (and stop with ``.stop()`` so the
        event queue can drain).  Keyword arguments are forwarded to
        :class:`~repro.telemetry.plane.TelemetryPlane`.
        """
        # Local import: the telemetry package is duck-typed over this
        # network object and must stay importable without repro.core.
        from repro.telemetry.plane import TelemetryPlane

        if self.telemetry is not None:
            raise TopologyError(f"network {self.name} already has a telemetry plane")
        self.telemetry = TelemetryPlane(self, **plane_kwargs)
        return self.telemetry

    def run(self, duration: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the simulator until idle (or for ``duration`` seconds)."""
        return self.topology.run(until=None if duration is None else self.topology.sim.now + duration,
                                 max_events=max_events)

    def send_flow(
        self,
        src_host: str,
        app_name: str,
        user_name: str,
        dst_ip: IPv4Address | str,
        dst_port: int,
        *,
        proto: str | int = "tcp",
        payload_size: int = 512,
        runtime_keys: Optional[dict[str, str]] = None,
        settle: float = 1.0,
    ) -> FlowResult:
        """Open a flow from a host and report whether its first packet was delivered.

        Runs the simulator until the network is idle (bounded by
        ``settle`` seconds of simulated time), then inspects the
        destination host and the controller audit log.
        """
        source = self.host(src_host)
        packet, _socket, _process = source.open_flow(
            app_name, user_name, dst_ip, dst_port,
            proto=proto, payload_size=payload_size, runtime_keys=runtime_keys,
        )
        flow = FlowSpec.from_packet(packet)
        self.topology.run(until=self.topology.sim.now + settle)
        destination = self.topology.node_for_ip(dst_ip)
        delivered = False
        if isinstance(destination, EndHost):
            delivered = flow.as_tuple() in {
                FlowSpec.from_packet(p).as_tuple() for p in destination.delivered
            }
        record = self._last_decision_for(flow)
        return FlowResult(
            flow=flow,
            delivered=delivered,
            setup_latency=record.query_latency if record else None,
            decision_action=record.action if record else None,
            decision_rule=record.rule_text if record else "",
        )

    def _last_decision_for(self, flow: FlowSpec):
        for controller in self.controllers.values():
            for record in reversed(controller.audit.records()):
                if record.flow == flow:
                    return record
        return None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> dict[str, object]:
        """Return a combined summary across controllers and switches."""
        summary: dict[str, object] = {
            "topology": self.topology.describe(),
            "controllers": {name: c.summary() for name, c in self.controllers.items()},
            "switch_flow_tables": {
                name: switch.flow_table.stats() for name, switch in self.switches.items()
            },
        }
        if self.cluster is not None:
            cluster_summary = self.cluster.summary()
            cluster_summary.pop("per_shard", None)  # already under "controllers"
            summary["cluster"] = cluster_summary
        if self.telemetry is not None:
            summary["telemetry"] = self.telemetry.stats()
        return summary

    def hosts_with_daemons(self) -> Iterable[str]:
        """Return the names of hosts running an ident++ daemon."""
        return sorted(self.daemons)


class IdentPPClusterNetwork(IdentPPNetwork):
    """An ident++ network fronted by a sharded controller cluster.

    Same builder API as :class:`IdentPPNetwork`, but instead of one
    default controller the control plane is a
    :class:`~repro.cluster.cluster.ControllerCluster` of ``shards``
    replicas: switches punt each flow to its consistent-hash owner,
    policy is set cluster-wide, and the failover monitor (started with
    :meth:`start_monitoring`) re-homes flows around a killed replica::

        net = IdentPPClusterNetwork("demo", shards=4)
        sw = net.add_switch("sw1")
        ...
        net.set_policy({...})            # propagates to every shard
        net.start_monitoring()
        net.cluster.kill(net.cluster.shard_map.shards()[0])
        net.run(1.0)                     # monitor re-punts orphans
        net.stop_monitoring()
    """

    def __init__(
        self,
        name: str = "identpp-cluster-net",
        *,
        shards: int = 2,
        link_latency: float = DEFAULT_LATENCY,
        link_bandwidth: Optional[float] = DEFAULT_BANDWIDTH,
        controller_config: Optional[ControllerConfig] = None,
        policy_default_action: str = "pass",
        **cluster_kwargs,
    ) -> None:
        super().__init__(
            name,
            link_latency=link_latency,
            link_bandwidth=link_bandwidth,
            policy_default_action=policy_default_action,
            create_default_controller=False,
        )
        self.add_cluster(
            shards=shards,
            config=controller_config,
            policy_default_action=policy_default_action,
            **cluster_kwargs,
        )

    def start_monitoring(self) -> None:
        """Arm the failover monitor (heartbeat polling begins)."""
        self.cluster.monitor.start()

    def stop_monitoring(self) -> None:
        """Disarm the failover monitor so the event queue can drain."""
        self.cluster.monitor.stop()
