"""The ident++ controller (§3.4, Figure 1).

"When an OpenFlow switch cannot find a match for a packet in its flow
table, it sends the packet to the ident++ controller.  When the
controller receives the packet, it queries the source and destination
ident++ daemons for additional information.  The information is then
stored in the ``@src`` and the ``@dst`` dictionaries.  The controller
then executes the rules that are stored in its configuration files."

The controller here implements the full Figure 1 sequence on the
simulated OpenFlow network:

1. a client's first packet misses the switch flow table and is punted,
2. the controller queries both ends of the flow with ident++ (charging
   the network round-trip and daemon processing time to flow-setup
   latency, and letting on-path peer controllers intercept or augment),
3. the PF+=2 policy is evaluated over the flow plus the ``@src``/``@dst``
   dictionaries,
4. on *pass*, flow entries are installed along the whole path (and the
   reverse path for ``keep state`` rules) and the buffered packet is
   released; on *block*, a drop entry caches the negative decision at
   the flow's **first** enforcement hop only (a denial never needs to
   burn table space mid-path — packets stopped at ingress cannot reach
   the other hops),
5. every decision is recorded in the audit log, attributed to delegation
   grants when ``allowed()``/``verify()`` made the difference, and can be
   revoked later.

Multi-hop installs are remembered per decision cookie: a ``FlowRemoved``
from *any* hop (idle timeout, eviction, lifecycle sweep) unwinds the
remaining hops with cookie-scoped deletes, so one flow's path state
lives and dies as a unit instead of decaying hop by hop.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.audit import AuditLog, DecisionRecord
from repro.exceptions import ControllerError, PFError, TopologyError
from repro.core.cache import DecisionCache
from repro.core.interception import InterceptionPolicy
from repro.core.lifecycle import LifecycleService
from repro.core.policy_engine import PolicyDecision, PolicyEngine
from repro.identpp.client import QueryClient, QueryInterceptor, QueryOutcome
from repro.identpp.engine import QueryEngine
from repro.identpp.flowspec import FlowSpec
from repro.identpp.wire import DEFAULT_QUERY_KEYS, IDENT_PP_PORT, IdentQuery, IdentResponse
from repro.netsim.events import Event, Future
from repro.netsim.sanitizer import KIND_STALE_CONTINUATION
from repro.netsim.nodes import Node
from repro.netsim.statistics import Histogram
from repro.netsim.topology import Topology
from repro.openflow.actions import DropAction, FloodAction, OutputAction
from repro.openflow.channel import DEFAULT_CONTROL_LATENCY
from repro.openflow.controller_base import Controller
from repro.openflow.match import Match
from repro.openflow.messages import FlowRemoved, PacketIn
from repro.openflow.switch import OpenFlowSwitch

#: Time charged for one PF+=2 policy evaluation at the controller.
DEFAULT_POLICY_EVAL_DELAY = 100e-6


@dataclass(frozen=True)
class PathInstall:
    """The datapath footprint of one multi-hop decision (§3.4).

    Records which switches hold flow entries for a decision cookie, so
    a ``FlowRemoved`` from any one hop can unwind the others and a
    failover can re-home the unwinding duty to a live replica.
    """

    flow: FlowSpec
    switches: tuple[str, ...]


@dataclass
class DecisionTask:
    """One punted flow's trip through the continuation-scheduled pipeline.

    A punt no longer runs as one synchronous call chain; it advances
    through schedulable stages, each entered by its own event:

    * ``wait`` — (serial core only) queued for the loop, queries not
      yet dispatched;
    * ``query`` — endpoint queries dispatched, answers in flight;
    * ``queued`` — answers in, waiting for the serialized eval loop;
    * ``eval`` — occupying the policy-eval stage.

    ``arrival`` doubles as the punt's generation token: any stage whose
    task no longer matches ``_inflight[flow]`` (the deadline failed the
    punt closed, a failover exported it, or a re-punt superseded it)
    discards itself instead of advancing.
    """

    flow: FlowSpec
    arrival: float
    switch: OpenFlowSwitch
    stage: str = "query"
    outcomes: list = field(default_factory=list)
    #: When the last endpoint answer landed (0.0 until then).
    ready_at: float = 0.0


class SerialDecisionQueue:
    """The controller's serialized stage as a real event-scheduled queue.

    Replaces the old ``_busy_until`` timestamp fiction: instead of
    reserving a closed-form slot arithmetically at punt time, tasks now
    wait on an actual FIFO and occupy the loop one at a time, each
    service ending with a scheduled completion event.  Queueing delay
    emerges from the event timeline — on a uniform trace it matches the
    old closed form exactly (``tests/test_decision_core.py`` proves the
    recurrence), while heterogeneous traces are now served in *ready*
    order rather than punt order, and superseded punts no longer occupy
    phantom slots.
    """

    def __init__(self, controller: "IdentPPController") -> None:
        self._controller = controller
        self._queue: deque[DecisionTask] = deque()
        self._current: Optional[DecisionTask] = None
        self._event: Optional[Event] = None
        self.served = 0
        self.max_depth = 0

    @property
    def busy(self) -> bool:
        """Return ``True`` while a task occupies the loop."""
        return self._current is not None

    def depth(self) -> int:
        """Return queued plus in-service tasks."""
        return len(self._queue) + (1 if self._current is not None else 0)

    def submit(self, task: DecisionTask) -> None:
        """Append a task and start serving if the loop is idle."""
        self._queue.append(task)
        self.max_depth = max(self.max_depth, self.depth())
        if self._current is None:
            self._start_next()

    def _start_next(self) -> None:
        controller = self._controller
        while self._queue:
            if controller.halted:
                # The loop froze with the process; restart() resumes it.
                return
            task = self._queue.popleft()
            if controller._inflight.get(task.flow) is not task:
                # Superseded while queued (deadline fired, failover
                # exported the flow, or a re-punt started a fresh
                # pipeline): skip without occupying the loop — a real
                # queue serves no phantom work.
                controller._report_stale_continuation(task, where="serial queue")
                continue
            self._current = task
            service = controller._service_time(task)
            if controller.sim is not None:
                self._event = controller.sim.schedule(
                    service, self._finish, task, label=f"{controller.name}:decide"
                )
            else:
                self._finish(task)
            return

    def _finish(self, task: DecisionTask) -> None:
        self._current = None
        self._event = None
        self.served += 1
        if not self._controller.halted:
            self._controller._eval_step(task)
        self._start_next()

    def restart(self) -> None:
        """Resume service after a halt froze the loop (frozen work replays)."""
        if self._current is None:
            self._start_next()

    def reset(self) -> None:
        """Drop all queued work (a failover handed the flows elsewhere)."""
        self._queue.clear()
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self._current = None


@dataclass
class ControllerConfig:
    """Tunables of an :class:`IdentPPController`.

    The lifecycle knobs bound how long lost or dead flow state can live:

    * ``pending_deadline`` — seconds a punted flow may sit in the pending
      table waiting for a decision before the controller fails closed
      (drops the buffered packets and audits an ``error`` decision).
      ``0`` disables the deadline.
    * ``lifecycle_interval`` — how often the attached
      :class:`~repro.core.lifecycle.LifecycleService` sweeps the decision
      cache, the ``keep state`` table and every managed switch's flow
      table.  ``0`` (the default) leaves sweeping manual so existing
      simulations keep their exact event timelines.
    * ``cache_capacity`` — optional LRU bound on the decision cache.
    * ``state_timeout`` — idle lifetime of ``keep state`` entries (the
      paper's PF default of 300 s).
    * ``serialize_decisions`` — model the controller's *policy-eval*
      stage as a single serial loop: each evaluation occupies it for
      ``policy_eval_delay``, so concurrent punts queue behind each other
      instead of overlapping.  The queue is a real event-scheduled
      serial resource (:class:`SerialDecisionQueue`); query round-trips
      still overlap fully under the async core.  This is what makes one
      controller a measurable scalability chokepoint (and sharding a
      measurable win); off by default so existing scenario timelines are
      unchanged.

    The decision-core knobs pick how punts traverse the pipeline:

    * ``decision_core`` — ``"async"`` (the default) runs each punt as a
      chain of continuations on the simulator: queries are dispatched
      immediately and the loop is yielded, each endpoint answer arrives
      as its own event, and only policy eval can serialize.  Thousands
      of round-trips overlap, so daemon latency sets flow-setup latency
      but not throughput.  ``"serial"`` models the naive synchronous
      controller: one punt is serviced end to end (queries *and* eval)
      before the next starts, so daemon latency sums across punts — the
      baseline the overlap bench measures the async core against.
    * ``nonblocking_inbox`` — queue switch→controller messages and
      drain them from a scheduled event instead of handling them inside
      the channel's delivery call (see
      :attr:`~repro.openflow.controller_base.Controller.nonblocking_inbox`).

    The query-engine knobs put a cache between the controller and the
    end-host daemons (§2 step 3 is the dominant flow-setup cost):

    * ``query_cache_ttl`` — lifetime of cached endpoint answers.  ``0``
      (the default) disables the engine entirely: every punt issues
      fresh ident++ queries, exactly the pre-engine behaviour.
    * ``query_negative_ttl`` — lifetime of cached *timeouts* (legacy
      hosts without a daemon, unreachable hosts).  ``None`` mirrors
      ``query_cache_ttl``.

    The identity-plane knobs pick how endpoint answers stay fresh
    (an A/B switch like ``decision_core``):

    * ``identity_plane`` — ``"pull"`` (the default) keeps the PR 5
      semantics: answers age out by TTL and every miss queries the
      daemon.  ``"push"`` additionally promotes hot destination hosts
      to standing wire-v2 subscriptions: their answers become resident
      (authoritative until the daemon pushes a delta, zero round trips
      per punt), while legacy daemons and cold hosts keep the pull
      path untouched.
    * ``push_promote_punts`` — punts from a destination host before the
      controller registers standing interest in it.
    * ``push_idle_demote`` — idle seconds after which the lifecycle
      sweeper demotes a subscribed host back to the pull plane.
    * ``push_max_subscriptions`` — optional hard cap on the
      subscription table (the bounded-state invariant's knob).
    """

    query_keys: tuple[str, ...] = tuple(DEFAULT_QUERY_KEYS)
    install_along_path: bool = True
    idle_timeout: float = 60.0
    hard_timeout: float = 0.0
    decision_ttl: float = 60.0
    policy_eval_delay: float = DEFAULT_POLICY_EVAL_DELAY
    flow_priority: int = 100
    drop_priority: int = 90
    # Quarantine drops must outrank already-installed pass entries
    # (flow_priority), or a quarantined host's live flows keep flowing.
    quarantine_priority: int = 200
    query_both_ends: bool = True
    pending_deadline: float = 5.0
    lifecycle_interval: float = 0.0
    cache_capacity: Optional[int] = None
    state_timeout: float = 300.0
    serialize_decisions: bool = False
    decision_core: str = "async"
    nonblocking_inbox: bool = False
    query_cache_ttl: float = 0.0
    query_negative_ttl: Optional[float] = None
    identity_plane: str = "pull"
    push_promote_punts: int = 3
    push_idle_demote: float = 30.0
    push_max_subscriptions: Optional[int] = None


class IdentPPController(Controller):
    """An OpenFlow controller that delegates security decisions through ident++."""

    def __init__(
        self,
        name: str,
        topology: Topology,
        policy: PolicyEngine,
        *,
        config: Optional[ControllerConfig] = None,
    ) -> None:
        super().__init__(name)
        self.topology = topology
        self.policy = policy
        self.config = config if config is not None else ControllerConfig()
        if self.config.decision_core not in ("async", "serial"):
            raise ControllerError(
                f"unknown decision_core {self.config.decision_core!r} "
                "(expected 'async' or 'serial')"
            )
        if self.config.identity_plane not in ("pull", "push"):
            raise ControllerError(
                f"unknown identity_plane {self.config.identity_plane!r} "
                "(expected 'pull' or 'push')"
            )
        self.nonblocking_inbox = self.config.nonblocking_inbox
        self.query_client = QueryClient(topology)
        self.query_engine = QueryEngine(
            self.query_client,
            ttl=self.config.query_cache_ttl,
            negative_ttl=self.config.query_negative_ttl,
            name=f"{name}.query-engine",
            push=self.config.identity_plane == "push",
            push_idle_demote=self.config.push_idle_demote,
            push_max_subscriptions=self.config.push_max_subscriptions,
        )
        # Punt tallies per destination IP feeding hot-host promotion;
        # reset on demotion so a host re-earns residency from fresh
        # history, not a stale pre-demotion count.
        self._push_punt_counts: dict[str, int] = {}
        self.query_engine.on_demote = lambda ip: self._push_punt_counts.pop(ip, None)
        self.cache = DecisionCache(
            ttl=self.config.decision_ttl, capacity=self.config.cache_capacity
        )
        self.audit = AuditLog(name=f"{name}.audit")
        self.interception = InterceptionPolicy(name=f"{name}.interception")
        self.peer_interceptors: list[QueryInterceptor] = []
        self.flow_setup_latency = Histogram(f"{name}.flow_setup_latency")
        self.query_latency = Histogram(f"{name}.query_latency")
        self._pending: dict[FlowSpec, list[PacketIn]] = {}
        # When each pending flow was first punted, and the one-shot
        # fail-closed deadline event armed for it.
        self._pending_since: dict[FlowSpec, float] = {}
        self._pending_deadline_events: dict[FlowSpec, Event] = {}
        self._cookie_counter = itertools.count(1)
        # Decisions whose ident++ responses are in but not yet evaluated;
        # everything ready at the same simulated instant is flushed through
        # one PolicyEngine.decide_batch() call.
        self._decision_queue: list[tuple] = []
        self._flush_scheduled = False
        # Punts mid-pipeline: queries in flight, queued for the serial
        # loop, or inside their eval slot.  Always a subset of
        # ``_pending``; a failover export drains both together.
        self._inflight: dict[FlowSpec, DecisionTask] = {}
        # The serialized stage (policy eval, plus queries under the
        # serial core) as a real event-scheduled queue.
        self._serial = SerialDecisionQueue(self)
        self.policy_errors = 0
        self.pending_expired = 0
        self.repunts_adopted = 0
        # cookie -> PathInstall for decisions whose entries span more
        # than one switch; consulted by on_flow_removed to tear the
        # whole path down when any hop reports its entry gone.
        self._path_installs: dict[str, PathInstall] = {}
        self.path_unwinds = 0
        # Hosts quarantined through quarantine_host (telemetry-driven or
        # administrative); the set makes re-quarantine a no-op.
        self.quarantined_hosts: set[str] = set()
        self.lifecycle = LifecycleService(
            name=f"{name}.lifecycle", interval=self.config.lifecycle_interval
        )
        self.cache.state_table.timeout = self.config.state_timeout
        self.lifecycle.register(
            "decisions", self.cache.expire, self.cache.expirable_count,
            self.cache.next_expiry,
        )
        # Cached endpoint answers age out with the other per-flow state.
        self.lifecycle.register(
            "queries", self.query_engine.expire, self.query_engine.expirable_count,
            self.query_engine.next_expiry,
        )
        # Resolve .state_table per call: DecisionCache.clear() rebinds it,
        # and a captured bound method would keep sweeping the orphan.
        self.lifecycle.register(
            "states",
            lambda now: self.cache.state_table.expire(now),
            lambda: self.cache.state_table.expirable_count(),
            lambda: self.cache.state_table.next_deadline(),
        )
        # Punted flows are normally failed closed by their own one-shot
        # deadline event; the sweep only backstops flows whose event is
        # missing (sim-less operation, a reset that dropped the queue),
        # so covered flows don't keep the service ticking.
        self.lifecycle.register(
            "pending",
            self._expire_stale_pending,
            self._uncovered_pending_count,
            self._next_pending_deadline,
        )
        if self.config.identity_plane == "push":
            # Standing subscriptions idle out like the other per-flow
            # state; the sweeper demotes them back to the pull plane.
            self.lifecycle.register(
                "subscriptions",
                self.query_engine.demote_idle,
                self.query_engine.demotable_count,
                self.query_engine.next_demotion,
            )
        self.attach(topology.sim)

    # ------------------------------------------------------------------
    # Configuration conveniences
    # ------------------------------------------------------------------

    def attach(self, sim) -> None:
        """Bind the controller (and its lifecycle service) to a simulator clock."""
        super().attach(sim)
        self.lifecycle.attach(sim)

    def register_switch(
        self, switch: OpenFlowSwitch, *, latency: float = DEFAULT_CONTROL_LATENCY
    ):
        """Register a switch and put its flow table under lifecycle management."""
        channel = super().register_switch(switch, latency=latency)
        self.lifecycle.register(
            f"flow_table:{switch.name}",
            switch.sweep_expired,
            switch.flow_table.expirable_count,
            switch.flow_table.next_deadline,
        )
        return channel

    @property
    def delegations(self):
        """Return the delegation manager behind the policy engine."""
        return self.policy.delegations

    def add_peer_interceptor(self, interceptor: QueryInterceptor) -> None:
        """Register another controller on the query path (its interception policy applies)."""
        self.peer_interceptors.append(interceptor)

    # ------------------------------------------------------------------
    # QueryInterceptor protocol (so *other* controllers can route queries
    # through this one)
    # ------------------------------------------------------------------

    def intercept_query(self, query: IdentQuery) -> Optional[IdentResponse]:
        """Answer a passing query from this controller's interception policy."""
        return self.interception.intercept_query(query)

    def augment_response(self, query: IdentQuery, response: IdentResponse) -> None:
        """Augment a passing response from this controller's interception policy."""
        self.interception.augment_response(query, response)

    # ------------------------------------------------------------------
    # Packet-in handling (Figure 1, steps 2-5)
    # ------------------------------------------------------------------

    def on_packet_in(self, message: PacketIn) -> None:
        packet = message.packet
        if self.compromised:
            # §5.1: a compromised controller disables all protection.
            self._forward_unconditionally(message)
            return
        if not packet.is_ip():
            # Non-IP traffic (ARP and friends do not exist in this model);
            # release it by flooding so the datapath stays usable.
            self.send_packet_out(
                message.switch, actions=[FloodAction()], buffer_id=message.buffer_id,
                in_port=message.in_port,
            )
            return
        if IDENT_PP_PORT in (packet.tp_src, packet.tp_dst):
            # ident++ queries/responses travelling over the datapath are
            # control traffic; forward them toward their destination.
            self._forward_control_traffic(message)
            return
        flow = FlowSpec.from_packet(packet)
        arrival = self.now

        cached = self.cache.lookup(flow, arrival)
        if cached is not None:
            self._apply_verdict_to_datapath(
                flow, [message], cached.action == "pass", cached.cookie,
                keep_state=cached.keep_state, from_cache=True,
            )
            self.audit.record(
                DecisionRecord(
                    time=arrival,
                    flow=flow,
                    action=cached.action,
                    rule_text=cached.rule_text,
                    rule_origin="cache",
                    cookie=cached.cookie,
                    cached=True,
                )
            )
            return

        if flow in self._pending:
            # Another switch punted the same flow while queries are in
            # flight; remember the buffered packet and answer it when the
            # decision lands.
            self._pending[flow].append(message)
            return
        self._pending[flow] = [message]
        self._pending_since[flow] = arrival
        if self.sim is not None and self.config.pending_deadline > 0:
            # Fail-closed backstop: if the decision is lost (an exception
            # mid-pipeline, a dropped event), this fires and drops the
            # buffered packets instead of stranding the flow forever.  A
            # completed decision cancels it, so the common path never pays.
            self._pending_deadline_events[flow] = self.sim.schedule(
                self.config.pending_deadline,
                self._pending_deadline_fired,
                flow,
                label=f"{self.name}:pending-deadline",
            )
        self.lifecycle.kick()
        if self.config.identity_plane == "push":
            self._note_punt_for_promotion(flow, message.switch, arrival)

        task = DecisionTask(flow=flow, arrival=arrival, switch=message.switch)
        self._inflight[flow] = task
        if self.config.decision_core == "serial":
            # Baseline synchronous controller: the loop services one
            # punt end to end — queries *and* eval — before the next
            # starts, so daemon latency sums across concurrent punts.
            task.stage = "wait"
            self._serial.submit(task)
            return
        # Async core: dispatch the endpoint queries now and yield the
        # loop.  Each answer arrives as its own scheduled event; the
        # gather barrier fires _answers_ready at the instant the last
        # one lands, so thousands of round-trips overlap in flight.
        Future.gather(self._dispatch_queries_async(flow, message.switch)).add_done_callback(
            lambda outcomes, task=task: self._answers_ready(task, outcomes)
        )

    def _note_punt_for_promotion(
        self, flow: FlowSpec, switch: OpenFlowSwitch, arrival: float
    ) -> None:
        """Tally one punt against the destination; promote when hot.

        A destination punted ``push_promote_punts`` times earns a
        standing subscription: its answers become resident and later
        punts stop costing daemon round-trips.  A refused subscription
        (legacy daemon) leaves the tally in place — the engine memoizes
        the refusing daemon object, so re-attempts are free and a
        daemon *upgrade* is noticed on the next punt.
        """
        ip = str(flow.dst_ip)
        engine = self.query_engine
        if engine.is_subscribed(ip):
            return
        count = self._push_punt_counts.get(ip, 0) + 1
        self._push_punt_counts[ip] = count
        if count >= self.config.push_promote_punts:
            if engine.subscribe_host(ip, from_node=switch, now=arrival):
                del self._push_punt_counts[ip]

    def _query_endpoints(self, flow: FlowSpec, switch: OpenFlowSwitch) -> list[QueryOutcome]:
        """Issue the ident++ queries for a flow (both ends, or source only).

        Queries go through the :class:`QueryEngine`, so with a non-zero
        ``query_cache_ttl`` a hot endpoint's answer is fetched once and
        shared: repeat punts hit the cache, concurrent punts coalesce
        onto the one outstanding query, and daemon-less hosts cost one
        timeout per TTL.  With the default TTL of ``0`` the engine is a
        pass-through and every punt queries fresh.
        """
        interceptors = tuple(self.peer_interceptors)
        if self.config.query_both_ends:
            src_outcome, dst_outcome = self.query_engine.query_both_ends(
                flow, from_node=switch, keys=self.config.query_keys, interceptors=interceptors
            )
            return [src_outcome, dst_outcome]
        src_outcome = self.query_engine.query(
            flow, "src", from_node=switch, keys=self.config.query_keys, interceptors=interceptors
        )
        return [src_outcome]

    def _dispatch_queries_async(self, flow: FlowSpec, switch: OpenFlowSwitch) -> list[Future]:
        """Dispatch the ident++ queries for a flow; answers arrive as events.

        The async twin of :meth:`_query_endpoints`: the same engine
        semantics (cache hits, coalescing onto in-flight round-trips,
        negative caching), but each endpoint's answer completes its own
        :class:`~repro.netsim.events.Future` at the instant it lands
        instead of being charged as one opaque blocking delay.
        """
        interceptors = tuple(self.peer_interceptors)
        if self.config.query_both_ends:
            src_future, dst_future = self.query_engine.query_both_ends_async(
                flow, from_node=switch, keys=self.config.query_keys, interceptors=interceptors
            )
            return [src_future, dst_future]
        return [
            self.query_engine.query_async(
                flow, "src", from_node=switch, keys=self.config.query_keys,
                interceptors=interceptors,
            )
        ]

    def _answers_ready(self, task: DecisionTask, outcomes: list) -> None:
        """Continuation: the last endpoint answer landed; head for eval.

        Runs at the arrival instant of the slower answer.  A task whose
        punt was resolved while the queries were in flight (deadline,
        failover export, re-punt) discards itself here; a halted
        controller leaves the task frozen for ``export_pending``.
        """
        task.outcomes = list(outcomes)
        task.ready_at = self.now
        query_cost = QueryClient.combined_latency(task.outcomes)
        self.query_latency.observe(query_cost)
        if self.halted:
            # The crash froze this decision mid-flight; the flow stays
            # in ``_pending`` for the failover monitor to export.
            return
        if self._inflight.get(task.flow) is not task:
            self._report_stale_continuation(task, where="answer arrival")
            return
        if self.config.serialize_decisions:
            task.stage = "queued"
            self._serial.submit(task)
            return
        task.stage = "eval"
        if self.sim is not None:
            self.sim.schedule(
                self.config.policy_eval_delay, self._eval_step, task,
                label=f"{self.name}:decide",
            )
        else:
            self._eval_step(task)

    def _eval_step(self, task: DecisionTask) -> None:
        """Continuation: the policy-eval slot elapsed; hand over for batching."""
        self._complete_decision(task.flow, task.outcomes, task.arrival)

    # ------------------------------------------------------------------
    # Sanitizer hooks (silent discards become findings when enabled)
    # ------------------------------------------------------------------

    def _report_stale(self, flow: FlowSpec, arrival: float, *, where: str) -> None:
        """File a stale-continuation finding when a sanitizer is attached.

        The discard itself is *correct* — the punt was failed closed,
        exported by a failover, or superseded by a re-punt — but a
        scenario that silently races its own deadlines is usually a
        mis-tuned scenario, so under ``Simulator(sanitize=True)`` each
        discard is reported instead of vanishing.
        """
        sim = self.sim
        if sim is not None and sim.sanitizer is not None:
            sim.sanitizer.report(
                KIND_STALE_CONTINUATION,
                f"{self.name}: {where} continuation for {flow} "
                f"(punt generation t={arrival:g}) found its task superseded",
            )

    def _report_stale_continuation(self, task: DecisionTask, *, where: str) -> None:
        """Task-object form of :meth:`_report_stale` (adds the stage)."""
        sim = self.sim
        if sim is not None and sim.sanitizer is not None:
            sim.sanitizer.report(
                KIND_STALE_CONTINUATION,
                f"{self.name}: {where} continuation for {task.flow} "
                f"(punt generation t={task.arrival:g}, stage={task.stage}) "
                f"found its task superseded",
            )

    def _service_time(self, task: DecisionTask) -> float:
        """Return how long ``task`` occupies the serialized loop.

        Under the async core the queries already ran; only the eval
        occupies the loop.  Under the serial core the loop performs the
        blocking query round-trip itself, so the punt holds it for the
        queries *plus* the eval — the collapse the overlap bench shows.
        """
        if task.stage == "wait":
            task.outcomes = self._query_endpoints(task.flow, task.switch)
            query_cost = QueryClient.combined_latency(task.outcomes)
            self.query_latency.observe(query_cost)
            task.ready_at = self.now
            task.stage = "eval"
            return query_cost + self.config.policy_eval_delay
        task.stage = "eval"
        return self.config.policy_eval_delay

    def _complete_decision(
        self,
        flow: FlowSpec,
        outcomes: Sequence[QueryOutcome],
        arrival: float,
    ) -> None:
        """Queue a flow whose eval slot elapsed for (batched) evaluation.

        The tail of the continuation pipeline (reached from
        :meth:`_eval_step` once the answers are in and the eval delay —
        serialized or not — has been paid).  Decisions becoming ready at
        the same simulated instant are evaluated together through
        :meth:`PolicyEngine.decide_batch`, so the per-decision context
        setup is paid once per burst of punts.
        """
        if self.halted:
            # The crash froze this decision mid-flight; the flow stays in
            # ``_pending`` for the failover monitor to export.
            return
        if self._pending_since.get(flow) != arrival:
            # The punt this decision answers was already resolved
            # without us: its deadline failed it closed, or a failover
            # handed it to a successor.  Matching on the punt arrival —
            # not mere pending presence — also discards us when the flow
            # was re-punted meanwhile: this decision's query outcomes are
            # stale, and the re-punt runs its own fresh pipeline.
            self._report_stale(flow, arrival, where="eval completion")
            return
        src_doc = outcomes[0].document if outcomes else None
        dst_doc = outcomes[1].document if len(outcomes) > 1 else None
        self._decision_queue.append((flow, src_doc, dst_doc, outcomes, arrival))
        if self.sim is not None:
            if not self._flush_scheduled:
                self._flush_scheduled = True
                self.sim.schedule(0.0, self._flush_decisions, label=f"{self.name}:decide-flush")
        else:
            self._flush_decisions()

    def _flush_decisions(self) -> None:
        """Evaluate every queued ready flow in one batch and program the datapath."""
        self._flush_scheduled = False
        if self.halted:
            return
        queue, self._decision_queue = self._decision_queue, []
        # A same-instant deadline (or a failover export) may have
        # resolved a queued flow between ready and flush — deciding it
        # again would double-program the datapath — and a resolved-then-
        # re-punted flow must be decided by its own fresh pipeline, not
        # this stale one (the punt arrival identifies the generation).
        live = []
        for entry in queue:
            if self._pending_since.get(entry[0]) == entry[4]:
                live.append(entry)
            else:
                self._report_stale(entry[0], entry[4], where="decision flush")
        queue = live
        if not queue:
            return
        try:
            decisions = self.policy.decide_batch(
                [(flow, src_doc, dst_doc) for flow, src_doc, dst_doc, _, _ in queue]
            )
        except PFError:
            # One mis-evaluating flow must not poison the burst: fall back
            # to per-flow decisions so every other flow still completes.
            # The erroring flows themselves fail *closed* — buffered
            # packets are dropped and the error is audited — rather than
            # re-raising, which would leak their pending entries and
            # blackhole the flows permanently.
            for entry in queue:
                flow, src_doc, dst_doc = entry[0], entry[1], entry[2]
                try:
                    decision = self.policy.decide(flow, src_doc, dst_doc)
                except PFError as error:
                    self._fail_closed(entry, error)
                    continue
                self._finish_decision(entry, decision)
            return
        for entry, decision in zip(queue, decisions):
            self._finish_decision(entry, decision)

    def _finish_decision(self, entry: tuple, decision: PolicyDecision) -> None:
        """Cache, install and audit one evaluated decision."""
        flow, _, _, outcomes, arrival = entry
        cookie = f"{self.name}:decision-{next(self._cookie_counter)}"
        self.cache.store(
            flow,
            decision.action,
            cookie,
            self.now,
            keep_state=decision.keep_state,
            rule_text=decision.rule_text,
        )
        pending = self._pop_pending(flow)
        self._apply_verdict_to_datapath(
            flow, pending, decision.is_pass, cookie, keep_state=decision.keep_state
        )
        query_cost = QueryClient.combined_latency(outcomes)
        self.flow_setup_latency.observe(self.now - arrival)
        self._audit_decision(decision, cookie, query_cost)
        self.lifecycle.kick()

    def _fail_closed(self, entry: tuple, error: PFError) -> None:
        """Resolve an erroring flow as an audited drop (``rule_origin="error"``).

        The block is cached with the normal TTL so a chatty erroring flow
        does not re-trigger the failure on every packet, yet gets
        re-evaluated once the administrator fixes the policy.
        """
        flow, _, _, _, arrival = entry
        self.policy_errors += 1
        self._resolve_fail_closed(
            flow,
            f"policy evaluation failed: {error}",
            cache_rule_text=f"error: {error}",
        )
        self.flow_setup_latency.observe(self.now - arrival)
        self.lifecycle.kick()

    def _resolve_fail_closed(
        self, flow: FlowSpec, note: str, *, cache_rule_text: Optional[str] = None
    ) -> str:
        """Shared fail-closed resolution: drop buffered punts + audit the error.

        With ``cache_rule_text`` the block is also cached (negative cache
        for the TTL); without it the next punt re-runs the pipeline.
        Returns the decision cookie.
        """
        cookie = f"{self.name}:decision-{next(self._cookie_counter)}"
        if cache_rule_text is not None:
            self.cache.store(flow, "block", cookie, self.now, rule_text=cache_rule_text)
        pending = self._pop_pending(flow)
        self._apply_verdict_to_datapath(flow, pending, False, cookie, keep_state=False)
        self.audit.record(
            DecisionRecord(
                time=self.now,
                flow=flow,
                action="block",
                rule_text="",
                rule_origin="error",
                cookie=cookie,
                note=note,
            )
        )
        return cookie

    def _pop_pending(self, flow: FlowSpec) -> list[PacketIn]:
        """Claim a flow's buffered punts, disarming its fail-closed deadline.

        Also retires the flow's in-flight pipeline task: any of its
        still-scheduled continuations (a query answer on the wire, a
        queued eval) will find the task superseded and discard itself.
        """
        self._pending_since.pop(flow, None)
        self._inflight.pop(flow, None)
        deadline = self._pending_deadline_events.pop(flow, None)
        if deadline is not None:
            deadline.cancel()
        return self._pending.pop(flow, [])

    def _pending_deadline_fired(self, flow: FlowSpec) -> None:
        """One-shot deadline: the decision for ``flow`` never arrived."""
        if self.halted:
            # A dead controller cannot fail a flow closed; the pending
            # entry must survive for the failover handoff, where the
            # successor arms its own deadline.
            return
        if flow in self._pending:
            self._expire_pending_flow(flow)

    def _uncovered_pending_count(self) -> int:
        """O(1) probe: how many pending flows have no armed deadline event.

        Every armed one-shot deadline covers exactly one pending flow
        (both tables are populated at punt and drained together by
        ``_pop_pending``), so the uncovered population is just the size
        difference of the two tables.  The lifecycle service probes this
        on every sweep-scheduling decision; the full scan below only
        runs when this says there is something to reclaim.
        """
        if self.config.pending_deadline <= 0:
            return 0
        return len(self._pending_since) - len(self._pending_deadline_events)

    def _uncovered_pending(self) -> list[FlowSpec]:
        """Return pending flows with no armed one-shot deadline event."""
        if self.config.pending_deadline <= 0:
            return []
        return [
            flow for flow in self._pending_since
            if flow not in self._pending_deadline_events
        ]

    def _next_pending_deadline(self) -> Optional[float]:
        """Return when the oldest *uncovered* pending punt hits its deadline."""
        if self._uncovered_pending_count() <= 0:
            return None
        uncovered = self._uncovered_pending()
        if not uncovered:
            return None
        since = min(self._pending_since[flow] for flow in uncovered)
        return since + self.config.pending_deadline

    def _expire_stale_pending(self, now: float) -> int:
        """Lifecycle sweep: fail-close uncovered pending flows past their deadline."""
        if self.halted:
            return 0
        deadline = self.config.pending_deadline
        stale = [
            flow for flow in self._uncovered_pending()
            if now - self._pending_since[flow] > deadline
        ]
        for flow in stale:
            self._expire_pending_flow(flow)
        return len(stale)

    def _expire_pending_flow(self, flow: FlowSpec) -> None:
        """Drop a stranded flow's buffered packets and audit the failure.

        No decision is cached, and a decision event that still fires for
        the flow later is discarded (it must not override the fail-closed
        resolution): the next punt re-runs the pipeline from scratch.
        """
        self.pending_expired += 1
        self._resolve_fail_closed(
            flow, "pending decision deadline exceeded; failing closed"
        )

    def _audit_decision(self, decision: PolicyDecision, cookie: str, query_cost: float) -> None:
        for principal in decision.principals:
            self.delegations.record_use(principal, cookie)
        self.audit.record(
            DecisionRecord(
                time=self.now,
                flow=decision.flow,
                action=decision.action,
                rule_text=decision.rule_text,
                rule_origin=decision.rule_origin,
                cookie=cookie,
                delegated=decision.delegated,
                delegation_functions=decision.delegation_functions,
                src_keys=decision.src_keys,
                dst_keys=decision.dst_keys,
                query_latency=query_cost,
            )
        )

    # ------------------------------------------------------------------
    # Datapath programming
    # ------------------------------------------------------------------

    def _apply_verdict_to_datapath(
        self,
        flow: FlowSpec,
        pending: Sequence[PacketIn],
        allowed: bool,
        cookie: str,
        *,
        keep_state: bool,
        from_cache: bool = False,
    ) -> None:
        if allowed:
            installed = self._install_path(flow, cookie, keep_state=keep_state)
            for message in pending:
                self._release_packet(message, flow, installed)
            return
        drop_match = Match.from_five_tuple(
            flow.src_ip, flow.dst_ip, flow.proto, flow.src_port, flow.dst_port
        )
        # Drop-at-first-hop: a fresh denial is enforced at the flow's
        # ingress switch only.  Packets stopped there never reach the
        # rest of the path, so caching the block mid-path would burn k-1
        # table entries per denial for nothing.  A *repeat* punt (cache
        # hit) proves the punting switch does keep seeing the flow —
        # flooding, a fail-open neighbour, an expired ingress entry — so
        # it earns a drop entry of its own, bounding the punt stream to
        # one per switch instead of one per packet.
        ingress = None if from_cache else self._first_enforcement_hop(flow)
        ingress_covered = False
        for message in pending:
            if from_cache or ingress is None or message.switch.name == ingress.name:
                if ingress is not None:
                    ingress_covered = True
                self.install_flow(
                    message.switch,
                    drop_match,
                    [DropAction()],
                    priority=self.config.drop_priority,
                    idle_timeout=self.config.idle_timeout,
                    # A chatty blocked flow refreshes the idle timer forever;
                    # the hard cap keeps the datapath's negative cache from
                    # outliving the controller cache, so the flow is
                    # re-evaluated after a policy change.
                    hard_timeout=self.config.decision_ttl,
                    cookie=cookie,
                    buffer_id=message.buffer_id,
                )
            else:
                # A mid-path switch punted (its hop entry expired out of
                # step with the ingress one): release its buffer to drop
                # without installing an entry there.
                self.send_packet_out(
                    message.switch,
                    actions=[DropAction()],
                    buffer_id=message.buffer_id,
                    in_port=message.in_port,
                )
        if ingress is not None and not ingress_covered:
            self.install_flow(
                ingress,
                drop_match,
                [DropAction()],
                priority=self.config.drop_priority,
                idle_timeout=self.config.idle_timeout,
                hard_timeout=self.config.decision_ttl,
                cookie=cookie,
            )

    def _install_path(self, flow: FlowSpec, cookie: str, *, keep_state: bool) -> dict[str, int]:
        """Install forward (and, for ``keep state``, reverse) entries along the path.

        Returns a map of switch name → egress port for the forward
        direction, used to release buffered packets.
        """
        egress_by_switch: dict[str, int] = {}
        path = self._path_for_flow(flow)
        if path is None or not self.config.install_along_path:
            return egress_by_switch
        match = Match.from_five_tuple(
            flow.src_ip, flow.dst_ip, flow.proto, flow.src_port, flow.dst_port
        )
        reverse = flow.reversed()
        reverse_match = Match.from_five_tuple(
            reverse.src_ip, reverse.dst_ip, reverse.proto, reverse.src_port, reverse.dst_port
        )
        touched: set[str] = set()
        for index, node in enumerate(path):
            if not isinstance(node, OpenFlowSwitch) or node.name not in self.channels:
                continue
            next_node = path[index + 1] if index + 1 < len(path) else None
            previous_node = path[index - 1] if index > 0 else None
            if next_node is not None:
                out_port = self.topology.egress_port(node, next_node).number
                egress_by_switch[node.name] = out_port
                self.install_flow(
                    node,
                    match,
                    [OutputAction(out_port)],
                    priority=self.config.flow_priority,
                    idle_timeout=self.config.idle_timeout,
                    hard_timeout=self.config.hard_timeout,
                    cookie=cookie,
                )
                touched.add(node.name)
            if keep_state and previous_node is not None:
                back_port = self.topology.egress_port(node, previous_node).number
                self.install_flow(
                    node,
                    reverse_match,
                    [OutputAction(back_port)],
                    priority=self.config.flow_priority,
                    idle_timeout=self.config.idle_timeout,
                    hard_timeout=self.config.hard_timeout,
                    cookie=cookie,
                )
                touched.add(node.name)
        if len(touched) > 1:
            # Single-switch installs need no unwinding; multi-hop ones
            # are registered so the first FlowRemoved tears down the rest.
            self._path_installs[cookie] = PathInstall(
                flow=flow, switches=tuple(sorted(touched))
            )
        return egress_by_switch

    def _first_enforcement_hop(self, flow: FlowSpec) -> Optional[OpenFlowSwitch]:
        """Return the first managed switch on the flow's path (its ingress hop)."""
        path = self._path_for_flow(flow)
        if path is None:
            return None
        for node in path:
            if isinstance(node, OpenFlowSwitch) and node.name in self.channels:
                return node
        return None

    def _path_for_flow(self, flow: FlowSpec) -> Optional[list[Node]]:
        source = self.topology.node_for_ip(flow.src_ip)
        destination = self.topology.node_for_ip(flow.dst_ip)
        if source is None or destination is None:
            return None
        try:
            return self.topology.shortest_path(source, destination)
        except TopologyError:
            # No path (partition, failed fabric) is an expected topology
            # answer: the caller falls back to first-hop-only handling.
            # Anything else — a programming error — must propagate, not
            # be swallowed as "no path".
            return None

    def _release_packet(
        self, message: PacketIn, flow: FlowSpec, egress_by_switch: dict[str, int]
    ) -> None:
        out_port = egress_by_switch.get(message.switch.name)
        if out_port is not None:
            actions = [OutputAction(out_port)]
        else:
            actions = [FloodAction()]
        self.send_packet_out(
            message.switch, actions=actions, buffer_id=message.buffer_id, in_port=message.in_port
        )

    # ------------------------------------------------------------------
    # Path-wide teardown (one hop's expiry unwinds the whole path)
    # ------------------------------------------------------------------

    def on_flow_removed(self, message: FlowRemoved) -> None:
        """Unwind the rest of a multi-hop install when any hop loses its entry.

        A flow entry disappearing from one hop — idle timeout, hard
        timeout, capacity eviction, a lifecycle sweep — means the path
        no longer forwards end to end, so the entries still resident on
        the other hops are dead weight at best and, after rerouting, a
        correctness hazard.  The first ``FlowRemoved`` for a registered
        cookie tears the remaining hops down with cookie-scoped deletes
        (silent by OpenFlow semantics: explicit deletes do not generate
        further ``FlowRemoved``, so teardown cannot cascade).  The
        reporting switch is deleted-from too: it may still hold the
        decision's *other* entry (a ``keep state`` reverse entry whose
        twin idle-expired first), and path state must die as a unit.
        """
        install = self._path_installs.pop(message.cookie, None)
        if install is None:
            return
        self.path_unwinds += 1
        for name in install.switches:
            channel = self.channels.get(name)
            if channel is not None and channel.connected:
                self.remove_flows_by_cookie(name, message.cookie)

    def export_path_installs(
        self, prefix: Optional[str] = None
    ) -> list[tuple[str, PathInstall]]:
        """Hand over registered multi-hop installs (failover/restore handoff).

        With ``prefix`` only cookies starting with it are exported (a
        restore reclaims exactly the revived shard's own decisions);
        without it the whole registry is drained.  Exported installs are
        removed here — exactly one controller must own each unwind.
        """
        if prefix is None:
            items = sorted(self._path_installs.items())
            self._path_installs.clear()
            return items
        items = sorted(
            (cookie, install)
            for cookie, install in self._path_installs.items()
            if cookie.startswith(prefix)
        )
        for cookie, _ in items:
            del self._path_installs[cookie]
        return items

    def adopt_path_installs(self, items: Sequence[tuple[str, PathInstall]]) -> None:
        """Take over unwinding duty for another replica's multi-hop installs.

        Used by the cluster failover (a dead shard cannot hear
        ``FlowRemoved``) and by restore (the revived owner reclaims its
        own cookies).
        """
        for cookie, install in items:
            self._path_installs[cookie] = install

    def path_install_count(self) -> int:
        """Return how many multi-hop installs this controller is tracking."""
        return len(self._path_installs)

    def discard_path_install(self, cookie: str) -> bool:
        """Forget a cookie's path registry entry without touching switches.

        Used by cluster-wide revocation: the revoking replica already
        removed the entries from every switch (silently, so no
        ``FlowRemoved`` will ever arrive), meaning any *other* replica
        still holding unwind duty for the cookie — a failover adopter,
        or the owner itself on resync replay — must drop the stale
        entry or it leaks forever.
        """
        return self._path_installs.pop(cookie, None) is not None

    def has_path_install(self, cookie: str) -> bool:
        """Return whether this controller holds the path registry for ``cookie``.

        The cluster uses this to route a thawed ``FlowRemoved`` to the
        replica that adopted the cookie's unwinding duty.
        """
        return cookie in self._path_installs

    def _forward_control_traffic(self, message: PacketIn) -> None:
        """Forward ident++ protocol packets toward their destination without policy."""
        packet = message.packet
        destination = self.topology.node_for_ip(packet.ip_dst)
        actions = [FloodAction()]
        if destination is not None:
            try:
                path = self.topology.shortest_path(message.switch, destination)
                if len(path) > 1:
                    out_port = self.topology.egress_port(message.switch, path[1]).number
                    actions = [OutputAction(out_port)]
            except TopologyError:
                # Unroutable control traffic floods (legacy behaviour);
                # non-topology errors propagate rather than degrade to a
                # silent flood.
                actions = [FloodAction()]
        self.send_packet_out(
            message.switch, actions=actions, buffer_id=message.buffer_id, in_port=message.in_port
        )

    def _forward_unconditionally(self, message: PacketIn) -> None:
        """Compromised-controller behaviour: everything is forwarded, nothing audited."""
        self.send_packet_out(
            message.switch, actions=[FloodAction()], buffer_id=message.buffer_id,
            in_port=message.in_port,
        )

    # ------------------------------------------------------------------
    # Direct decision API (benchmarks, tests, offline what-if queries)
    # ------------------------------------------------------------------

    def decide_flow(self, flow: FlowSpec, src_doc=None, dst_doc=None) -> PolicyDecision:
        """Evaluate the policy for a flow without touching the datapath."""
        return self.policy.decide(flow, src_doc, dst_doc)

    def decide_flows(self, items: Sequence[tuple]) -> list[PolicyDecision]:
        """Batch form of :meth:`decide_flow` for offline what-if queries.

        ``items`` are ``(flow, src_doc, dst_doc)`` tuples; the whole list
        is evaluated through one :meth:`PolicyEngine.decide_batch` call.
        """
        return self.policy.decide_batch(items)

    # ------------------------------------------------------------------
    # Cluster hooks (pending handoff + policy/delegation epochs)
    # ------------------------------------------------------------------

    def export_pending(self) -> list[tuple[FlowSpec, list[PacketIn]]]:
        """Hand over every in-flight punted flow (failover handoff).

        Pops the whole pending table — buffered PacketIns, arrival times
        and armed fail-closed deadlines — and returns ``(flow, punts)``
        pairs in arrival order so a successor can adopt them.  Flows
        frozen *mid-decision* — queries dispatched but answers still on
        the wire, or queued for the serial loop — are pending too, so
        they export with everything else; their orphaned continuations
        find the task superseded when they fire and discard themselves.
        Queued but unevaluated decisions are discarded with their
        pending entries: the successor re-runs the pipeline from the
        punt.
        """
        flows = sorted(self._pending_since, key=self._pending_since.__getitem__)
        flows += [flow for flow in self._pending if flow not in self._pending_since]
        exported = [(flow, self._pop_pending(flow)) for flow in flows]
        self._decision_queue.clear()
        self._flush_scheduled = False
        # The handed-off work no longer occupies this decision loop; a
        # restored shard must not serialize new punts behind it.
        self._inflight.clear()
        self._serial.reset()
        return exported

    def pending_flows(self) -> list[FlowSpec]:
        """Return the flows currently awaiting a decision."""
        return list(self._pending)

    def inflight_count(self) -> int:
        """Return how many punts are mid-pipeline (query/queued/eval stage)."""
        return len(self._inflight)

    def pending_depth(self) -> int:
        """Return how many flows await a decision (telemetry probe tap)."""
        return len(self._pending)

    def serial_depth(self) -> int:
        """Return the serial decision queue's depth (telemetry probe tap)."""
        return self._serial.depth()

    def resume(self) -> None:
        """Revive a halted controller without stranding its frozen flows.

        Two kinds of work died with the process and must be replayed,
        or the flows they carried would stay open-ended forever:

        * the halted inbox — punts that reached the dead process's
          socket but were never handled;
        * fail-closed deadlines that fired (and were swallowed) or were
          consumed while halted — every still-pending flow gets a fresh
          deadline, as if it had just been punted.
        """
        super().resume()
        # The serial loop froze with the process; restart it so the
        # still-queued (non-superseded) work and revived punts are
        # served again instead of stalling behind a dead service slot.
        self._serial.restart()
        if self.sim is not None and self.config.pending_deadline > 0:
            for flow in self._pending:
                stale = self._pending_deadline_events.pop(flow, None)
                if stale is not None:
                    stale.cancel()
                self._pending_deadline_events[flow] = self.sim.schedule(
                    self.config.pending_deadline,
                    self._pending_deadline_fired,
                    flow,
                    label=f"{self.name}:pending-deadline",
                )
        for message in self.take_halted_messages():
            self.handle_message(message)
        self.lifecycle.kick()

    def adopt_punt(self, message: PacketIn) -> None:
        """Adopt a punt re-homed from a failed replica.

        Delivered over this controller's own channel to the punting
        switch when it is up (so the handoff pays a control round-trip
        like any punt), or handled directly as a control-plane RPC when
        the channel is down.  Either way the flow enters the normal
        pipeline — including the fail-closed pending deadline.
        """
        self.repunts_adopted += 1
        channel = self.channels.get(message.switch.name)
        if channel is not None and channel.connected:
            channel.send_to_controller(message)
        else:
            self.handle_message(message)

    @property
    def policy_epoch(self) -> int:
        """Return the policy engine's ruleset epoch (bumped per rebuild)."""
        return self.policy.ruleset_epoch

    @property
    def delegation_epoch(self) -> int:
        """Return the delegation manager's grant/revoke epoch."""
        return self.delegations.epoch

    # ------------------------------------------------------------------
    # Revocation (the administrator "overrides, audits, and revokes")
    # ------------------------------------------------------------------

    def revoke_decision(self, cookie: str) -> int:
        """Tear down the datapath state created by one decision.

        Removes the matching flow entries from every managed switch and
        invalidates the controller-side cache.  Returns the number of
        flow entries removed.
        """
        removed = 0
        for switch in self.switches():
            removed += switch.flow_table.remove_by_cookie(cookie)
        self.cache.invalidate_cookie(cookie)
        # The revocation just did the unwinding; a later FlowRemoved for
        # this cookie must not re-tear a path that is already gone.
        self._path_installs.pop(cookie, None)
        return removed

    def revoke_delegation(self, principal: str) -> int:
        """Revoke a delegation grant and undo every decision that relied on it."""
        grant = self.delegations.revoke(principal, now=self.now)
        removed = 0
        for cookie in grant.decisions:
            removed += self.revoke_decision(cookie)
        return removed

    def quarantine_host(self, host_ip) -> bool:
        """Cut a compromised host off in both the policy and the datapath.

        The telemetry plane's auto-quarantine responder lands here (via
        the cluster coordinator when sharded).  Containment is layered
        so each part covers the others' gaps:

        1. a ``quick`` block pair is appended to the policy, so every
           *future* decision about the host denies regardless of what
           rule would otherwise match (last-match-wins cannot override
           a quick rule);
        2. cached decisions touching the host are revoked — their flow
           entries leave every switch and the decision cache forgets
           them, so in-flight conversations stop;
        3. the query engine's cached endpoint answers for the host are
           invalidated (a compromised host's daemon can no longer be
           believed, §6);
        4. wildcard drop entries for the host land on every switch at
           ``quarantine_priority``, containing the punt storm in the
           datapath — the scanner's packets die at its ingress switch
           instead of burning controller round-trips per probe.

        Idempotent: returns ``False`` (and does nothing) when the host
        is already quarantined.
        """
        ip = str(host_ip)
        if ip in self.quarantined_hosts:
            return False
        self.quarantined_hosts.add(ip)
        self.policy.add_control_file(
            f"00-quarantine-{ip}.control",
            f"block quick from {ip} to any\nblock quick from any to {ip}\n",
            provenance="quarantine",
        )
        for cookie in sorted(self.cache.cookies_for_host(ip)):
            self.revoke_decision(cookie)
        # A subscribed host must be demoted first: resident answers are
        # authoritative-until-delta, so invalidate_host alone would
        # leave them serving for a host we no longer trust.
        self.query_engine.unsubscribe_host(ip)
        self.query_engine.invalidate_host(ip, reason="quarantine")
        cookie = f"quarantine:{ip}"
        for switch in self.switches():
            for match in (Match(nw_src=ip), Match(nw_dst=ip)):
                self.install_flow(
                    switch,
                    match,
                    [DropAction()],
                    priority=self.config.quarantine_priority,
                    cookie=cookie,
                )
        return True

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> dict[str, object]:
        """Return the controller's headline numbers (used by benchmarks)."""
        return {
            "packet_ins": int(self.packet_ins.value),
            "flow_mods": int(self.flow_mods.value),
            "packet_outs": int(self.packet_outs.value),
            "decisions": self.audit.summary(),
            "flow_setup_latency": self.flow_setup_latency.summary(),
            "query_latency": self.query_latency.summary(),
            "cache": {
                "entries": len(self.cache),
                "hit_rate": self.cache.hit_rate(),
                **{k: v for k, v in self.cache.stats().items()
                   if k not in ("entries", "hit_rate")},
            },
            "state_table": self.cache.state_table.stats(),
            "identity_plane": self.config.identity_plane,
            "query_engine": self.query_engine.stats(),
            "lifecycle": self.lifecycle.stats(),
            "pending_flows": len(self._pending),
            "inflight_decisions": len(self._inflight),
            "serial_queue": {
                "depth": self._serial.depth(),
                "max_depth": self._serial.max_depth,
                "served": self._serial.served,
            },
            "pending_expired": self.pending_expired,
            "path_installs": len(self._path_installs),
            "path_unwinds": self.path_unwinds,
            "quarantined_hosts": sorted(self.quarantined_hosts),
            "policy_errors": self.policy_errors,
            "repunts_adopted": self.repunts_adopted,
            "halted": self.halted,
            "policy": self.policy.stats(),
        }
