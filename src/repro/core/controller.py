"""The ident++ controller (§3.4, Figure 1).

"When an OpenFlow switch cannot find a match for a packet in its flow
table, it sends the packet to the ident++ controller.  When the
controller receives the packet, it queries the source and destination
ident++ daemons for additional information.  The information is then
stored in the ``@src`` and the ``@dst`` dictionaries.  The controller
then executes the rules that are stored in its configuration files."

The controller here implements the full Figure 1 sequence on the
simulated OpenFlow network:

1. a client's first packet misses the switch flow table and is punted,
2. the controller queries both ends of the flow with ident++ (charging
   the network round-trip and daemon processing time to flow-setup
   latency, and letting on-path peer controllers intercept or augment),
3. the PF+=2 policy is evaluated over the flow plus the ``@src``/``@dst``
   dictionaries,
4. on *pass*, flow entries are installed along the whole path (and the
   reverse path for ``keep state`` rules) and the buffered packet is
   released; on *block*, a drop entry caches the negative decision,
5. every decision is recorded in the audit log, attributed to delegation
   grants when ``allowed()``/``verify()`` made the difference, and can be
   revoked later.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.audit import AuditLog, DecisionRecord
from repro.exceptions import PFError
from repro.core.cache import DecisionCache
from repro.core.interception import InterceptionPolicy
from repro.core.policy_engine import PolicyDecision, PolicyEngine
from repro.identpp.client import QueryClient, QueryInterceptor, QueryOutcome
from repro.identpp.flowspec import FlowSpec
from repro.identpp.wire import DEFAULT_QUERY_KEYS, IDENT_PP_PORT, IdentQuery, IdentResponse
from repro.netsim.nodes import Node
from repro.netsim.statistics import Histogram
from repro.netsim.topology import Topology
from repro.openflow.actions import DropAction, FloodAction, OutputAction
from repro.openflow.controller_base import Controller
from repro.openflow.match import Match
from repro.openflow.messages import PacketIn
from repro.openflow.switch import OpenFlowSwitch

#: Time charged for one PF+=2 policy evaluation at the controller.
DEFAULT_POLICY_EVAL_DELAY = 100e-6


@dataclass
class ControllerConfig:
    """Tunables of an :class:`IdentPPController`."""

    query_keys: tuple[str, ...] = tuple(DEFAULT_QUERY_KEYS)
    install_along_path: bool = True
    idle_timeout: float = 60.0
    hard_timeout: float = 0.0
    decision_ttl: float = 60.0
    policy_eval_delay: float = DEFAULT_POLICY_EVAL_DELAY
    flow_priority: int = 100
    drop_priority: int = 90
    query_both_ends: bool = True


class IdentPPController(Controller):
    """An OpenFlow controller that delegates security decisions through ident++."""

    def __init__(
        self,
        name: str,
        topology: Topology,
        policy: PolicyEngine,
        *,
        config: Optional[ControllerConfig] = None,
    ) -> None:
        super().__init__(name)
        self.topology = topology
        self.policy = policy
        self.config = config if config is not None else ControllerConfig()
        self.query_client = QueryClient(topology)
        self.cache = DecisionCache(ttl=self.config.decision_ttl)
        self.audit = AuditLog(name=f"{name}.audit")
        self.interception = InterceptionPolicy(name=f"{name}.interception")
        self.peer_interceptors: list[QueryInterceptor] = []
        self.flow_setup_latency = Histogram(f"{name}.flow_setup_latency")
        self.query_latency = Histogram(f"{name}.query_latency")
        self._pending: dict[FlowSpec, list[PacketIn]] = {}
        self._cookie_counter = itertools.count(1)
        # Decisions whose ident++ responses are in but not yet evaluated;
        # everything ready at the same simulated instant is flushed through
        # one PolicyEngine.decide_batch() call.
        self._decision_queue: list[tuple] = []
        self._flush_scheduled = False
        self.attach(topology.sim)

    # ------------------------------------------------------------------
    # Configuration conveniences
    # ------------------------------------------------------------------

    @property
    def delegations(self):
        """Return the delegation manager behind the policy engine."""
        return self.policy.delegations

    def add_peer_interceptor(self, interceptor: QueryInterceptor) -> None:
        """Register another controller on the query path (its interception policy applies)."""
        self.peer_interceptors.append(interceptor)

    # ------------------------------------------------------------------
    # QueryInterceptor protocol (so *other* controllers can route queries
    # through this one)
    # ------------------------------------------------------------------

    def intercept_query(self, query: IdentQuery) -> Optional[IdentResponse]:
        """Answer a passing query from this controller's interception policy."""
        return self.interception.intercept_query(query)

    def augment_response(self, query: IdentQuery, response: IdentResponse) -> None:
        """Augment a passing response from this controller's interception policy."""
        self.interception.augment_response(query, response)

    # ------------------------------------------------------------------
    # Packet-in handling (Figure 1, steps 2-5)
    # ------------------------------------------------------------------

    def on_packet_in(self, message: PacketIn) -> None:
        packet = message.packet
        if self.compromised:
            # §5.1: a compromised controller disables all protection.
            self._forward_unconditionally(message)
            return
        if not packet.is_ip():
            # Non-IP traffic (ARP and friends do not exist in this model);
            # release it by flooding so the datapath stays usable.
            self.send_packet_out(
                message.switch, actions=[FloodAction()], buffer_id=message.buffer_id,
                in_port=message.in_port,
            )
            return
        if IDENT_PP_PORT in (packet.tp_src, packet.tp_dst):
            # ident++ queries/responses travelling over the datapath are
            # control traffic; forward them toward their destination.
            self._forward_control_traffic(message)
            return
        flow = FlowSpec.from_packet(packet)
        arrival = self.now

        cached = self.cache.lookup(flow, arrival)
        if cached is not None:
            decision = None
            self._apply_verdict_to_datapath(
                flow, [message], cached.action == "pass", cached.cookie, keep_state=cached.keep_state
            )
            self.audit.record(
                DecisionRecord(
                    time=arrival,
                    flow=flow,
                    action=cached.action,
                    rule_text=cached.rule_text,
                    rule_origin="cache",
                    cookie=cached.cookie,
                    cached=True,
                )
            )
            return

        if flow in self._pending:
            # Another switch punted the same flow while queries are in
            # flight; remember the buffered packet and answer it when the
            # decision lands.
            self._pending[flow].append(message)
            return
        self._pending[flow] = [message]

        outcomes = self._query_endpoints(flow, message.switch)
        query_cost = QueryClient.combined_latency(outcomes)
        self.query_latency.observe(query_cost)
        total_delay = query_cost + self.config.policy_eval_delay
        if self.sim is not None:
            self.sim.schedule(
                total_delay,
                self._complete_decision,
                flow,
                outcomes,
                arrival,
                label=f"{self.name}:decide",
            )
        else:
            self._complete_decision(flow, outcomes, arrival)

    def _query_endpoints(self, flow: FlowSpec, switch: OpenFlowSwitch) -> list[QueryOutcome]:
        """Issue the ident++ queries for a flow (both ends, or source only)."""
        interceptors = tuple(self.peer_interceptors)
        if self.config.query_both_ends:
            src_outcome, dst_outcome = self.query_client.query_both_ends(
                flow, from_node=switch, keys=self.config.query_keys, interceptors=interceptors
            )
            return [src_outcome, dst_outcome]
        src_outcome = self.query_client.query(
            flow, "src", from_node=switch, keys=self.config.query_keys, interceptors=interceptors
        )
        return [src_outcome]

    def _complete_decision(
        self,
        flow: FlowSpec,
        outcomes: Sequence[QueryOutcome],
        arrival: float,
    ) -> None:
        """Queue a flow whose query responses are in for (batched) evaluation.

        Decisions becoming ready at the same simulated instant are
        evaluated together through :meth:`PolicyEngine.decide_batch`, so
        the per-decision context setup is paid once per burst of punts.
        """
        src_doc = outcomes[0].document if outcomes else None
        dst_doc = outcomes[1].document if len(outcomes) > 1 else None
        self._decision_queue.append((flow, src_doc, dst_doc, outcomes, arrival))
        if self.sim is not None:
            if not self._flush_scheduled:
                self._flush_scheduled = True
                self.sim.schedule(0.0, self._flush_decisions, label=f"{self.name}:decide-flush")
        else:
            self._flush_decisions()

    def _flush_decisions(self) -> None:
        """Evaluate every queued ready flow in one batch and program the datapath."""
        self._flush_scheduled = False
        queue, self._decision_queue = self._decision_queue, []
        if not queue:
            return
        try:
            decisions = self.policy.decide_batch(
                [(flow, src_doc, dst_doc) for flow, src_doc, dst_doc, _, _ in queue]
            )
        except PFError:
            # One mis-evaluating flow must not poison the burst: fall back
            # to per-flow decisions so every other flow still completes,
            # then re-raise the first error exactly as the unbatched punt
            # path would have.
            first_error: Optional[PFError] = None
            for entry in queue:
                flow, src_doc, dst_doc = entry[0], entry[1], entry[2]
                try:
                    decision = self.policy.decide(flow, src_doc, dst_doc)
                except PFError as error:
                    if first_error is None:
                        first_error = error
                    continue
                self._finish_decision(entry, decision)
            if first_error is not None:
                raise first_error
            return
        for entry, decision in zip(queue, decisions):
            self._finish_decision(entry, decision)

    def _finish_decision(self, entry: tuple, decision: PolicyDecision) -> None:
        """Cache, install and audit one evaluated decision."""
        flow, _, _, outcomes, arrival = entry
        cookie = f"{self.name}:decision-{next(self._cookie_counter)}"
        self.cache.store(
            flow,
            decision.action,
            cookie,
            self.now,
            keep_state=decision.keep_state,
            rule_text=decision.rule_text,
        )
        pending = self._pending.pop(flow, [])
        self._apply_verdict_to_datapath(
            flow, pending, decision.is_pass, cookie, keep_state=decision.keep_state
        )
        query_cost = QueryClient.combined_latency(outcomes)
        self.flow_setup_latency.observe(self.now - arrival)
        self._audit_decision(decision, cookie, query_cost)

    def _audit_decision(self, decision: PolicyDecision, cookie: str, query_cost: float) -> None:
        for principal in decision.principals:
            self.delegations.record_use(principal, cookie)
        self.audit.record(
            DecisionRecord(
                time=self.now,
                flow=decision.flow,
                action=decision.action,
                rule_text=decision.rule_text,
                rule_origin=decision.rule_origin,
                cookie=cookie,
                delegated=decision.delegated,
                delegation_functions=decision.delegation_functions,
                src_keys=decision.src_keys,
                dst_keys=decision.dst_keys,
                query_latency=query_cost,
            )
        )

    # ------------------------------------------------------------------
    # Datapath programming
    # ------------------------------------------------------------------

    def _apply_verdict_to_datapath(
        self,
        flow: FlowSpec,
        pending: Sequence[PacketIn],
        allowed: bool,
        cookie: str,
        *,
        keep_state: bool,
    ) -> None:
        if allowed:
            installed = self._install_path(flow, cookie, keep_state=keep_state)
            for message in pending:
                self._release_packet(message, flow, installed)
        else:
            for message in pending:
                self.install_flow(
                    message.switch,
                    Match.from_five_tuple(
                        flow.src_ip, flow.dst_ip, flow.proto, flow.src_port, flow.dst_port
                    ),
                    [DropAction()],
                    priority=self.config.drop_priority,
                    idle_timeout=self.config.idle_timeout,
                    cookie=cookie,
                    buffer_id=message.buffer_id,
                )

    def _install_path(self, flow: FlowSpec, cookie: str, *, keep_state: bool) -> dict[str, int]:
        """Install forward (and, for ``keep state``, reverse) entries along the path.

        Returns a map of switch name → egress port for the forward
        direction, used to release buffered packets.
        """
        egress_by_switch: dict[str, int] = {}
        path = self._path_for_flow(flow)
        if path is None or not self.config.install_along_path:
            return egress_by_switch
        match = Match.from_five_tuple(
            flow.src_ip, flow.dst_ip, flow.proto, flow.src_port, flow.dst_port
        )
        reverse = flow.reversed()
        reverse_match = Match.from_five_tuple(
            reverse.src_ip, reverse.dst_ip, reverse.proto, reverse.src_port, reverse.dst_port
        )
        for index, node in enumerate(path):
            if not isinstance(node, OpenFlowSwitch) or node.name not in self.channels:
                continue
            next_node = path[index + 1] if index + 1 < len(path) else None
            previous_node = path[index - 1] if index > 0 else None
            if next_node is not None:
                out_port = self.topology.egress_port(node, next_node).number
                egress_by_switch[node.name] = out_port
                self.install_flow(
                    node,
                    match,
                    [OutputAction(out_port)],
                    priority=self.config.flow_priority,
                    idle_timeout=self.config.idle_timeout,
                    hard_timeout=self.config.hard_timeout,
                    cookie=cookie,
                )
            if keep_state and previous_node is not None:
                back_port = self.topology.egress_port(node, previous_node).number
                self.install_flow(
                    node,
                    reverse_match,
                    [OutputAction(back_port)],
                    priority=self.config.flow_priority,
                    idle_timeout=self.config.idle_timeout,
                    hard_timeout=self.config.hard_timeout,
                    cookie=cookie,
                )
        return egress_by_switch

    def _path_for_flow(self, flow: FlowSpec) -> Optional[list[Node]]:
        source = self.topology.node_for_ip(flow.src_ip)
        destination = self.topology.node_for_ip(flow.dst_ip)
        if source is None or destination is None:
            return None
        try:
            return self.topology.shortest_path(source, destination)
        except Exception:
            return None

    def _release_packet(
        self, message: PacketIn, flow: FlowSpec, egress_by_switch: dict[str, int]
    ) -> None:
        out_port = egress_by_switch.get(message.switch.name)
        if out_port is not None:
            actions = [OutputAction(out_port)]
        else:
            actions = [FloodAction()]
        self.send_packet_out(
            message.switch, actions=actions, buffer_id=message.buffer_id, in_port=message.in_port
        )

    def _forward_control_traffic(self, message: PacketIn) -> None:
        """Forward ident++ protocol packets toward their destination without policy."""
        packet = message.packet
        destination = self.topology.node_for_ip(packet.ip_dst)
        actions = [FloodAction()]
        if destination is not None:
            try:
                path = self.topology.shortest_path(message.switch, destination)
                if len(path) > 1:
                    out_port = self.topology.egress_port(message.switch, path[1]).number
                    actions = [OutputAction(out_port)]
            except Exception:
                actions = [FloodAction()]
        self.send_packet_out(
            message.switch, actions=actions, buffer_id=message.buffer_id, in_port=message.in_port
        )

    def _forward_unconditionally(self, message: PacketIn) -> None:
        """Compromised-controller behaviour: everything is forwarded, nothing audited."""
        self.send_packet_out(
            message.switch, actions=[FloodAction()], buffer_id=message.buffer_id,
            in_port=message.in_port,
        )

    # ------------------------------------------------------------------
    # Direct decision API (benchmarks, tests, offline what-if queries)
    # ------------------------------------------------------------------

    def decide_flow(self, flow: FlowSpec, src_doc=None, dst_doc=None) -> PolicyDecision:
        """Evaluate the policy for a flow without touching the datapath."""
        return self.policy.decide(flow, src_doc, dst_doc)

    def decide_flows(self, items: Sequence[tuple]) -> list[PolicyDecision]:
        """Batch form of :meth:`decide_flow` for offline what-if queries.

        ``items`` are ``(flow, src_doc, dst_doc)`` tuples; the whole list
        is evaluated through one :meth:`PolicyEngine.decide_batch` call.
        """
        return self.policy.decide_batch(items)

    # ------------------------------------------------------------------
    # Revocation (the administrator "overrides, audits, and revokes")
    # ------------------------------------------------------------------

    def revoke_decision(self, cookie: str) -> int:
        """Tear down the datapath state created by one decision.

        Removes the matching flow entries from every managed switch and
        invalidates the controller-side cache.  Returns the number of
        flow entries removed.
        """
        removed = 0
        for switch in self.switches():
            removed += switch.flow_table.remove_by_cookie(cookie)
        self.cache.invalidate_cookie(cookie)
        return removed

    def revoke_delegation(self, principal: str) -> int:
        """Revoke a delegation grant and undo every decision that relied on it."""
        grant = self.delegations.revoke(principal, now=self.now)
        removed = 0
        for cookie in grant.decisions:
            removed += self.revoke_decision(cookie)
        return removed

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> dict[str, object]:
        """Return the controller's headline numbers (used by benchmarks)."""
        return {
            "packet_ins": int(self.packet_ins.value),
            "flow_mods": int(self.flow_mods.value),
            "packet_outs": int(self.packet_outs.value),
            "decisions": self.audit.summary(),
            "flow_setup_latency": self.flow_setup_latency.summary(),
            "query_latency": self.query_latency.summary(),
            "cache": {
                "entries": len(self.cache),
                "hit_rate": self.cache.hit_rate(),
            },
            "policy": self.policy.stats(),
        }
