"""Intercepting and augmenting ident++ queries and responses (§3.4).

"ident++ controllers can intercept queries and responses.  However,
intercepted queries are not allowed to cause new queries.  To respond to
an intercepted query on behalf of an end-host, the controller spoofs the
IP address of the end-host, sends a response itself, but does not
forward the query.  To augment an intercepted response with additional
information, the controller inserts an empty line followed by the
key-value pairs it wishes to add."

Two of the paper's §4 applications rest on this:

* **Incremental benefit** — a controller answers queries about legacy
  hosts in its domain that run no daemon, so the rest of the network can
  still apply ident++ policies to them.
* **Network collaboration** — a branch's controller augments responses
  for flows headed toward it with (signed) rules describing what the
  branch is willing to accept, so the *remote* branch can filter at the
  source and spare the bottleneck link.

:class:`InterceptionPolicy` is the configuration object behind both; an
:class:`~repro.core.controller.IdentPPController` exposes it through the
``QueryInterceptor`` protocol the query client walks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.identpp.flowspec import FlowSpec
from repro.identpp.keyvalue import KeyValueSection, ResponseDocument
from repro.identpp.wire import IdentQuery, IdentResponse
from repro.netsim.addresses import IPv4Address, IPv4Network
from repro.netsim.statistics import Counter

#: Predicate deciding whether an augmentation applies to a query.
QueryPredicate = Callable[[IdentQuery], bool]


@dataclass
class StaticAnswer:
    """A canned response served on behalf of hosts in a subnet (no daemon needed)."""

    network: IPv4Network
    pairs: dict[str, str]
    source: str = "controller:static"

    def covers(self, address: IPv4Address) -> bool:
        """Return ``True`` if the answered-for host falls in this subnet."""
        return address in self.network


@dataclass
class AugmentationRule:
    """Key/value pairs appended (as a new section) to responses passing through."""

    pairs: dict[str, str]
    source: str = "controller:augment"
    applies_to: Optional[QueryPredicate] = None

    def matches(self, query: IdentQuery) -> bool:
        """Return ``True`` if this augmentation applies to the given query."""
        if self.applies_to is None:
            return True
        return bool(self.applies_to(query))


class InterceptionPolicy:
    """What one controller does to ident++ traffic it sees on the path."""

    def __init__(self, name: str = "interception") -> None:
        self.name = name
        self._static_answers: list[StaticAnswer] = []
        self._augmentations: list[AugmentationRule] = []
        self.queries_answered = Counter(f"{name}.queries_answered")
        self.responses_augmented = Counter(f"{name}.responses_augmented")

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def answer_for_subnet(
        self,
        network: IPv4Network | str,
        pairs: dict[str, str],
        *,
        source: str = "",
    ) -> StaticAnswer:
        """Answer queries on behalf of every host in ``network`` with ``pairs``."""
        answer = StaticAnswer(
            network=IPv4Network(network),
            pairs=dict(pairs),
            source=source or f"{self.name}:static",
        )
        self._static_answers.append(answer)
        return answer

    def answer_for_host(self, address: IPv4Address | str, pairs: dict[str, str]) -> StaticAnswer:
        """Answer queries on behalf of a single host."""
        return self.answer_for_subnet(f"{IPv4Address(address)}/32", pairs)

    def augment_with(
        self,
        pairs: dict[str, str],
        *,
        source: str = "",
        applies_to: Optional[QueryPredicate] = None,
    ) -> AugmentationRule:
        """Append ``pairs`` as a new section to matching responses passing through."""
        rule = AugmentationRule(
            pairs=dict(pairs),
            source=source or f"{self.name}:augment",
            applies_to=applies_to,
        )
        self._augmentations.append(rule)
        return rule

    def augment_flows_to(
        self,
        network: IPv4Network | str,
        pairs: dict[str, str],
        *,
        source: str = "",
    ) -> AugmentationRule:
        """Augment responses for flows whose destination lies in ``network``.

        This is the network-collaboration shape: branch B augments
        responses about flows heading to its own address space.
        """
        prefix = IPv4Network(network)

        def _applies(query: IdentQuery) -> bool:
            return query.flow.dst_ip in prefix

        return self.augment_with(pairs, source=source, applies_to=_applies)

    def clear(self) -> None:
        """Remove every configured answer and augmentation."""
        self._static_answers.clear()
        self._augmentations.clear()

    # ------------------------------------------------------------------
    # QueryInterceptor protocol
    # ------------------------------------------------------------------

    def intercept_query(self, query: IdentQuery) -> Optional[IdentResponse]:
        """Answer the query from a static answer, or pass it through (``None``)."""
        for answer in self._static_answers:
            if answer.covers(query.target_ip):
                self.queries_answered.increment()
                document = ResponseDocument()
                document.add_section(
                    KeyValueSection.from_dict(answer.pairs, source=answer.source)
                )
                return IdentResponse(flow=query.flow, document=document, responder=answer.source)
        return None

    def augment_response(self, query: IdentQuery, response: IdentResponse) -> None:
        """Append the configured augmentation sections to a passing response."""
        for rule in self._augmentations:
            if rule.matches(query):
                response.document.augment(rule.pairs, source=rule.source)
                self.responses_augmented.increment()

    def __repr__(self) -> str:
        return (
            f"InterceptionPolicy({self.name!r}, answers={len(self._static_answers)}, "
            f"augmentations={len(self._augmentations)})"
        )
