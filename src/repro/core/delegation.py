"""Delegation grants, auditing and revocation.

"Delegation in ident++ is two-fold: it involves the end-hosts and users
in classifying traffic and it allows them to specify rules to be
enforced in the network" (§1).  The administrator grants a principal (a
user, a department, or a third party such as the "Secur" security
company of Figure 7) the right to supply rules; technically the grant is
the principal's public key appearing in a ``dict <pubkeys>`` block plus
the policy rules that call ``allowed()``/``verify()`` against it.

:class:`DelegationManager` tracks those grants so they can be

* **audited** — which decisions were made because of which grant, and
* **revoked** — removing the grant invalidates the key, drops cached
  decisions and uninstalls the flow entries that relied on it ("the
  ability to delegate control and to override, audit, and revoke the
  delegation when necessary", §7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.exceptions import DelegationError
from repro.crypto.keystore import KeyStore
from repro.crypto.signatures import Signer
from repro.crypto.rsa import RSAPublicKey


@dataclass
class DelegationGrant:
    """One delegation: a named principal trusted to supply signed rules."""

    principal: str
    public_key_hex: str
    scope: str = ""
    granted_at: float = 0.0
    revoked: bool = False
    revoked_at: Optional[float] = None
    decisions: list[str] = field(default_factory=list)

    def record_use(self, cookie: str) -> None:
        """Record that a decision (identified by its cookie) relied on this grant."""
        self.decisions.append(cookie)

    def __str__(self) -> str:
        state = "revoked" if self.revoked else "active"
        return f"DelegationGrant({self.principal}, scope={self.scope or 'any'}, {state})"


class DelegationManager:
    """All delegation grants known to one controller."""

    def __init__(self, keystore: Optional[KeyStore] = None) -> None:
        self.keystore = keystore if keystore is not None else KeyStore()
        self._grants: dict[str, DelegationGrant] = {}
        #: Bumped whenever the active grant set changes, so the policy
        #: engine can cache its ``@pubkeys`` dictionary between decisions.
        self.epoch = 0

    # ------------------------------------------------------------------
    # Granting
    # ------------------------------------------------------------------

    def grant(
        self,
        principal: str,
        key: RSAPublicKey | Signer | str,
        *,
        scope: str = "",
        now: float = 0.0,
    ) -> DelegationGrant:
        """Grant ``principal`` the right to supply signed rules.

        Registers the principal's public key in the key store (making it
        available to ``@pubkeys[...]`` lookups) and records the grant.
        """
        if principal in self._grants and not self._grants[principal].revoked:
            raise DelegationError(f"principal {principal!r} already holds an active grant")
        self.keystore.add(principal, key)
        grant = DelegationGrant(
            principal=principal,
            public_key_hex=self.keystore.get(principal),
            scope=scope,
            granted_at=now,
        )
        self._grants[principal] = grant
        self.epoch += 1
        return grant

    def revoke(self, principal: str, *, now: float = 0.0) -> DelegationGrant:
        """Revoke a grant: the key disappears from the key store immediately.

        Returns the (now revoked) grant so the controller can also tear
        down the flow entries and cache lines its decisions created.
        """
        grant = self._grants.get(principal)
        if grant is None or grant.revoked:
            raise DelegationError(f"no active grant for principal {principal!r}")
        grant.revoked = True
        grant.revoked_at = now
        if principal in self.keystore:
            self.keystore.remove(principal)
        self.epoch += 1
        return grant

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def get(self, principal: str) -> Optional[DelegationGrant]:
        """Return the grant for ``principal``, if any (revoked or not)."""
        return self._grants.get(principal)

    def is_active(self, principal: str) -> bool:
        """Return ``True`` when ``principal`` holds an unrevoked grant."""
        grant = self._grants.get(principal)
        return grant is not None and not grant.revoked

    def active_grants(self) -> list[DelegationGrant]:
        """Return all unrevoked grants."""
        return [grant for grant in self._grants.values() if not grant.revoked]

    def record_use(self, principal: str, cookie: str) -> None:
        """Attribute a decision to a grant (used by the controller's audit path)."""
        grant = self._grants.get(principal)
        if grant is not None:
            grant.record_use(cookie)

    def decisions_for(self, principal: str) -> list[str]:
        """Return the decision cookies attributed to ``principal``."""
        grant = self._grants.get(principal)
        return list(grant.decisions) if grant is not None else []

    def pubkeys_dict(self) -> dict[str, str]:
        """Return the active grants as a ``@pubkeys`` dictionary."""
        return {
            grant.principal: grant.public_key_hex
            for grant in self._grants.values()
            if not grant.revoked
        }

    def __iter__(self) -> Iterator[DelegationGrant]:
        return iter(list(self._grants.values()))

    def __len__(self) -> int:
        return len(self._grants)
