"""The controller's audit log.

A central motivation for delegation in the paper is that "only more
recent architectures with strong central control make it possible to
delegate control ..., log and audit the delegates' actions, and revoke
the delegation if needed" (§1).  Every decision the ident++ controller
makes — including those that honoured delegated (``allowed()``/
``verify()``) rules — is recorded here so administrators can review what
their delegates did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.identpp.flowspec import FlowSpec


@dataclass(frozen=True)
class DecisionRecord:
    """One policy decision."""

    time: float
    flow: FlowSpec
    action: str
    rule_text: str
    rule_origin: str
    cookie: str
    delegated: bool = False
    delegation_functions: tuple[str, ...] = ()
    src_keys: dict[str, str] = field(default_factory=dict)
    dst_keys: dict[str, str] = field(default_factory=dict)
    query_latency: float = 0.0
    cached: bool = False
    note: str = ""

    @property
    def is_pass(self) -> bool:
        """Return ``True`` when the flow was allowed."""
        return self.action == "pass"


class AuditLog:
    """Append-only list of :class:`DecisionRecord` entries with query helpers."""

    def __init__(self, name: str = "audit") -> None:
        self.name = name
        self._records: list[DecisionRecord] = []

    def record(self, record: DecisionRecord) -> None:
        """Append one decision."""
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[DecisionRecord]:
        return iter(list(self._records))

    def records(self) -> list[DecisionRecord]:
        """Return all records in order."""
        return list(self._records)

    def filter(
        self,
        *,
        action: Optional[str] = None,
        delegated: Optional[bool] = None,
        flow: Optional[FlowSpec] = None,
        predicate: Optional[Callable[[DecisionRecord], bool]] = None,
    ) -> list[DecisionRecord]:
        """Return the records matching all given criteria."""
        selected = self._records
        if action is not None:
            selected = [r for r in selected if r.action == action]
        if delegated is not None:
            selected = [r for r in selected if r.delegated == delegated]
        if flow is not None:
            selected = [r for r in selected if r.flow == flow]
        if predicate is not None:
            selected = [r for r in selected if predicate(r)]
        return list(selected)

    def delegated_decisions(self) -> list[DecisionRecord]:
        """Return decisions that honoured delegated (allowed()/verify()) rules."""
        return self.filter(delegated=True)

    def decisions_for_user(self, user_id: str) -> list[DecisionRecord]:
        """Return decisions whose source reported the given ``userID``."""
        return [r for r in self._records if r.src_keys.get("userID") == user_id]

    def pass_count(self) -> int:
        """Return the number of allow decisions."""
        return sum(1 for r in self._records if r.is_pass)

    def block_count(self) -> int:
        """Return the number of deny decisions."""
        return sum(1 for r in self._records if not r.is_pass)

    def summary(self) -> dict[str, int]:
        """Return counts used by reports and tests."""
        return {
            "total": len(self._records),
            "pass": self.pass_count(),
            "block": self.block_count(),
            "delegated": len(self.delegated_decisions()),
            "cached": sum(1 for r in self._records if r.cached),
        }

    def clear(self) -> None:
        """Discard all records."""
        self._records.clear()
