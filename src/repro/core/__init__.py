"""The paper's primary contribution: the ident++ controller and its machinery.

This package ties the substrates together into the system of §3:

* :mod:`repro.core.policy_engine` — loads the ``.control`` files, builds
  the ``@src``/``@dst`` dictionaries from ident++ responses and runs the
  PF+=2 evaluator;
* :mod:`repro.core.controller` — the OpenFlow controller that, on a
  table miss, queries both ends of the flow, decides, installs flow
  entries along the path and releases the buffered packet (Figure 1);
* :mod:`repro.core.interception` — answering and augmenting ident++
  queries/responses on behalf of hosts (§3.4, §4 "Network Collaboration"
  and "Incremental Benefit");
* :mod:`repro.core.delegation` — grant / audit / revoke records for the
  controlled-delegation story of §2;
* :mod:`repro.core.cache` — the controller-side decision cache;
* :mod:`repro.core.lifecycle` — the flow-state lifecycle service that
  keeps the decision cache, state table and switch flow tables bounded
  under churn;
* :mod:`repro.core.audit` — the audit log every decision lands in;
* :mod:`repro.core.network` — a convenience builder that assembles an
  ident++-protected OpenFlow network (topology + switches + hosts +
  daemons + controller) in a few lines.
"""

from repro.core.audit import AuditLog, DecisionRecord
from repro.core.cache import CachedDecision, DecisionCache
from repro.core.controller import ControllerConfig, IdentPPController
from repro.core.delegation import DelegationGrant, DelegationManager
from repro.core.interception import AugmentationRule, InterceptionPolicy, StaticAnswer
from repro.core.lifecycle import ExpiryHeap, LifecycleService
from repro.core.network import HostSpec, IdentPPNetwork
from repro.core.policy_engine import PolicyDecision, PolicyEngine

__all__ = [
    "AuditLog",
    "DecisionRecord",
    "CachedDecision",
    "DecisionCache",
    "ControllerConfig",
    "IdentPPController",
    "DelegationGrant",
    "DelegationManager",
    "AugmentationRule",
    "InterceptionPolicy",
    "StaticAnswer",
    "ExpiryHeap",
    "LifecycleService",
    "HostSpec",
    "IdentPPNetwork",
    "PolicyDecision",
    "PolicyEngine",
]
