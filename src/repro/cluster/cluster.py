"""A sharded cluster of ident++ controllers behind one consistent-hash map.

The paper's single controller (§3.4) is the scalability chokepoint:
every new flow punts to one decision loop.  :class:`ControllerCluster` fronts N
:class:`~repro.core.controller.IdentPPController` replicas with a
:class:`~repro.cluster.shard_map.ShardMap`:

* every switch gets one control channel **per replica** plus a shard
  router, so each flow punts directly to its owning shard — no central
  dispatcher on the punt path;
* a :class:`~repro.cluster.failover.FailoverMonitor` detects a dead
  replica by missed heartbeats, re-homes its ring arc and re-punts its
  orphaned in-flight flows to the successors (fail-closed throughout:
  adopted flows get the successor's pending deadline);
* a :class:`~repro.cluster.coordinator.ClusterCoordinator` applies
  policy reloads and delegation grants/revocations to every replica in
  one call, so a ``revoke_delegation`` issued on any shard takes effect
  cluster-wide, with the originating shard audited ("override, audit,
  and revoke the delegation when necessary", §7);
* multi-hop path installs (flow entries "along the path", §3.4) are
  owned by each flow's shard; a failover re-homes both the dead
  shard's pending punts and its path-unwinding duty, so a
  ``FlowRemoved`` from any hop still tears the whole path down.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.failover import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_MISS_THRESHOLD,
    FailoverMonitor,
)
from repro.cluster.shard_map import DEFAULT_VNODES, ShardMap, flow_key
from repro.core.controller import ControllerConfig, IdentPPController
from repro.core.policy_engine import PolicyEngine
from repro.exceptions import TopologyError
from repro.identpp.flowspec import FlowSpec
from repro.netsim.packet import Packet
from repro.netsim.topology import Topology
from repro.openflow.channel import DEFAULT_CONTROL_LATENCY
from repro.openflow.messages import FlowRemoved, PacketIn
from repro.openflow.switch import OpenFlowSwitch


def identity_key(host_ip) -> str:
    """Return the ring key for host-level (push subscription) ownership.

    Subscriptions are per *host*, not per flow, so failover re-homing
    hashes them under their own namespace — every replica resolves the
    same host to the same live successor.
    """
    return f"identity:{host_ip}"


class ControllerCluster:
    """N ident++ controller shards, one consistent-hash control plane."""

    def __init__(
        self,
        name: str,
        topology: Topology,
        *,
        shards: int = 2,
        config: Optional[ControllerConfig] = None,
        policy_default_action: str = "pass",
        vnodes: int = DEFAULT_VNODES,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        miss_threshold: int = DEFAULT_MISS_THRESHOLD,
    ) -> None:
        if shards < 1:
            raise TopologyError(f"a cluster needs at least one shard (got {shards})")
        self.name = name
        self.topology = topology
        self.config = config if config is not None else ControllerConfig()
        self.replicas: dict[str, IdentPPController] = {}
        for index in range(shards):
            shard_name = f"{name}.shard{index}"
            engine = PolicyEngine(
                default_action=policy_default_action, name=f"{shard_name}.policy"
            )
            self.replicas[shard_name] = IdentPPController(
                shard_name, topology, engine, config=self.config
            )
        self.shard_map = ShardMap(self.replicas, vnodes=vnodes)
        self.coordinator = ClusterCoordinator(self)
        self.monitor = FailoverMonitor(
            self,
            heartbeat_interval=heartbeat_interval,
            miss_threshold=miss_threshold,
        )
        self.failovers = 0
        self.repunted_flows = 0
        self.repunted_messages = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    @property
    def sim(self):
        """Return the topology's simulator clock."""
        return self.topology.sim

    @property
    def now(self) -> float:
        """Return the current simulated time."""
        return self.sim.now if self.sim is not None else 0.0

    def register_switch(
        self, switch: OpenFlowSwitch, *, latency: float = DEFAULT_CONTROL_LATENCY
    ) -> None:
        """Give ``switch`` one channel per replica and the shard router."""
        for controller in self.replicas.values():
            controller.register_switch(switch, latency=latency)
        switch.set_shard_router(self.route)

    def route(self, packet: Packet) -> Iterable[str]:
        """Return the preference-ordered shard names for a punted packet.

        Lazy: the common case (owner channel up) only walks the ring to
        the first live shard; successors are resolved only if the
        switch keeps iterating past a downed channel.
        """
        return self.shard_map.iter_preference_of_key(self._routing_key(packet))

    def _routing_key(self, packet: Packet) -> str:
        """Return the ring key for a packet.

        Non-IP traffic has no 5-tuple; it hashes under one stable key so
        a single shard consistently handles it.  Punt routing and
        failover re-homing both go through here, so they cannot
        disagree on ownership.
        """
        if packet.is_ip():
            return flow_key(FlowSpec.from_packet(packet))
        return f"{self.name}:non-ip"

    def controller_for(self, flow: FlowSpec) -> IdentPPController:
        """Return the live replica that owns ``flow``."""
        return self.replicas[self.shard_map.owner(flow)]

    def replica(self, name: str) -> IdentPPController:
        """Return a replica by shard name."""
        try:
            return self.replicas[name]
        except KeyError as exc:
            raise TopologyError(f"unknown shard: {name}") from exc

    def switches(self) -> list[OpenFlowSwitch]:
        """Return the switches registered with the cluster."""
        for controller in self.replicas.values():
            return controller.switches()
        return []

    # ------------------------------------------------------------------
    # Failure injection + failover
    # ------------------------------------------------------------------

    def kill(self, shard: str) -> None:
        """Crash a replica: it stops processing and its channels drop.

        Future punts re-home immediately (the shard router skips
        disconnected channels); flows already inside the dead replica
        wait for the :class:`FailoverMonitor` to export them.
        """
        controller = self.replica(shard)
        controller.halt()
        for channel in controller.channels.values():
            channel.disconnect()

    def restore(self, shard: str) -> None:
        """Bring a crashed replica back into the ring.

        Channels reconnect before the replica resumes so the punts it
        replays from its halted inbox (and any deadline it fails closed)
        can reach the switches again.
        """
        controller = self.replica(shard)
        for channel in controller.channels.values():
            channel.reconnect()
        self.shard_map.revive(shard)
        # Resync before resume: the punts resume() replays from the
        # halted inbox must be decided under the policy/delegation state
        # the corpse missed, not the stale pre-crash one.
        self.coordinator.resync(shard)
        # With the owner's channels back up, switches route FlowRemoved
        # for its cookies to it again — so it reclaims the path installs
        # a failover handed to the fallback replica.  Reclaim *before*
        # replaying the backlog: a FlowRemoved frozen in the inbox must
        # find the registry it is meant to unwind.
        reclaimed: list = []
        for name, replica in self.replicas.items():
            if name != shard:
                reclaimed.extend(replica.export_path_installs(prefix=f"{shard}:"))
        if reclaimed:
            controller.adopt_path_installs(reclaimed)
        # Drain the backlog here rather than letting resume() replay it
        # blindly: while halted-but-connected this replica may have been
        # handed FlowRemoved for *other* shards' cookies (switch fallback
        # routing picks the first connected channel) whose registry lives
        # on the replica that adopted them — route each to its holder.
        backlog = controller.take_halted_messages()
        controller.resume()
        for message in backlog:
            if isinstance(message, FlowRemoved):
                holder = next(
                    (
                        c for c in self.replicas.values()
                        if c.has_path_install(message.cookie)
                    ),
                    controller,
                )
                holder.handle_message(message)
            else:
                controller.handle_message(message)
        self.monitor.note_revived(shard)

    def fail_over(self, shard: str) -> int:
        """Re-home a dead shard's ring arc and re-punt its orphaned flows.

        Exports the dead replica's pending table and halted message
        backlog, then delivers every orphaned PacketIn to the shard that
        now owns its flow.  Returns how many flows were re-punted.

        A shard that is somehow still running is killed first: exporting
        a *live* replica's pending table would let its in-flight
        decision events complete against successors' adoptions —
        duplicate decisions, duplicate flow entries.
        """
        dead = self.replica(shard)
        if not dead.halted:
            self.kill(shard)
        if self.shard_map.is_live(shard):
            self.shard_map.mark_dead(shard)
        self.failovers += 1
        # Re-home the corpse's multi-hop path installs: a dead shard can
        # never hear the FlowRemoved that should unwind them.  They go to
        # the replica a switch's FlowRemoved fallback routing will pick
        # (first connected channel in sorted name order), so the adopter
        # is the shard that will actually receive those messages.  With
        # no adopter (total outage) the registry stays on the corpse —
        # restore() revives it with its unwind duty intact.
        adopter = self._flow_removed_fallback()
        if adopter is not None:
            adopter.adopt_path_installs(dead.export_path_installs())
        # Re-home the corpse's standing subscriptions *before* its
        # punts: each successor must be resident (or resident-in-flight)
        # by the time the re-punted backlog arrives, or the backlog pays
        # the pull round-trips the push plane exists to remove.  The
        # re-home is also committed to the coordinator's replay log, so
        # a shard revived later re-registers interest in the hosts it
        # owns instead of rebuilding residency from cold punt history.
        push_records = dead.query_engine.export_push_state()
        if push_records:
            by_successor: dict[str, list] = {}
            for record in push_records:
                owner = self.shard_map.owner_of_key(identity_key(record["host_ip"]))
                by_successor.setdefault(owner, []).append(record)
            for owner, records in by_successor.items():
                self.replicas[owner].query_engine.adopt_push_state(records)
            self.coordinator.rehome_subscriptions(
                [record["host_ip"] for record in push_records], origin_shard=shard
            )
        repunted_keys: set[str] = set()
        for flow, messages in dead.export_pending():
            successor = self.controller_for(flow)
            for message in messages:
                successor.adopt_punt(message)
                self.repunted_messages += 1
            if messages:
                repunted_keys.add(flow_key(flow))
        for message in dead.take_halted_messages():
            # The dead process's socket backlog: punts re-home to their
            # owners; FlowRemoved notices go to the path adopter (they may
            # be the very trigger for an adopted install's unwind).
            if isinstance(message, PacketIn):
                key = self._routing_key(message.packet)
                self.replicas[self.shard_map.owner_of_key(key)].adopt_punt(message)
                self.repunted_messages += 1
                repunted_keys.add(key)
            elif isinstance(message, FlowRemoved):
                fallback = self._flow_removed_fallback()
                if fallback is not None:
                    fallback.handle_message(message)
        self.repunted_flows += len(repunted_keys)
        return len(repunted_keys)

    def _flow_removed_fallback(self) -> Optional[IdentPPController]:
        """Return the replica that receives FlowRemoved for dead owners.

        Mirrors :meth:`OpenFlowSwitch._owner_channel`'s fallback: when a
        cookie's owning channel is down, the switch delivers the notice
        to the first *connected* channel in sorted controller-name
        order.  Path-install adoption must land on the same replica or
        the unwind never fires — so the predicate here is channel
        connectivity, same as the switch's, with halted replicas
        additionally skipped (a notice delivered to a halted-but-still-
        connected replica lands in its halted inbox, and the next
        fail_over forwards it back here).
        """
        for name in sorted(self.replicas):
            controller = self.replicas[name]
            if controller.halted:
                continue
            if any(channel.connected for channel in controller.channels.values()):
                return controller
        return None

    # ------------------------------------------------------------------
    # Cluster-wide configuration (delegated to the coordinator)
    # ------------------------------------------------------------------

    def set_policy(self, files: dict[str, str], *, provenance: str = "administrator"):
        """Load ``.control`` files on every shard (one cluster epoch)."""
        return self.coordinator.set_policy(files, provenance=provenance)

    def grant_delegation(self, principal: str, key, *, scope: str = ""):
        """Grant a principal on every shard."""
        return self.coordinator.grant_delegation(principal, key, scope=scope)

    def revoke_delegation(self, principal: str, *, origin_shard: Optional[str] = None):
        """Revoke a grant cluster-wide (see :class:`ClusterCoordinator`)."""
        return self.coordinator.revoke_delegation(principal, origin_shard=origin_shard)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def telemetry_rollup(self) -> dict[str, float]:
        """Return cheap cluster-wide instantaneous aggregates.

        The telemetry plane samples this once per sweep (SRMCA-style:
        state pushed up the aggregation tree rather than per-series
        fan-out at read time); unlike :meth:`summary` it touches only
        integer counters, so it is safe to call on every tick.
        """
        punts = hits = lookups = subscriptions = 0
        for controller in self.replicas.values():
            punts += int(controller.packet_ins.value)
            engine = controller.query_engine
            hits += engine.hits
            lookups += engine.lookups()
            subscriptions += engine.subscription_count()
        return {
            "punts": float(punts),
            "pending": float(self.pending_total()),
            "hit_ratio": hits / lookups if lookups else 0.0,
            "failovers": float(self.failovers),
            "live_shards": float(len(self.shard_map.live_shards())),
            "subscriptions": float(subscriptions),
        }

    def pending_total(self) -> int:
        """Return how many flows are pending across all replicas."""
        return sum(len(c.pending_flows()) for c in self.replicas.values())

    def decided_total(self) -> int:
        """Return non-cached decisions made across all replicas."""
        return sum(
            sum(1 for record in c.audit.records() if not record.cached)
            for c in self.replicas.values()
        )

    def audit_records(self):
        """Return every replica's audit records, ordered by time."""
        records = []
        for controller in self.replicas.values():
            records.extend(controller.audit.records())
        records.sort(key=lambda record: record.time)
        return records

    def query_engine_summary(self) -> dict[str, object]:
        """Aggregate every shard's query-engine counters.

        Each shard runs its **own** :class:`~repro.identpp.engine.QueryEngine`
        (caches are per-replica: a shard only answers punts for flows it
        owns, so sharing entries would buy nothing and couple failure
        domains).  The aggregate view is what a query-heavy soak gates
        on: cluster-wide hit/coalesce/negative-hit rates.
        """
        engines = [c.query_engine for c in self.replicas.values()]
        totals = {
            "entries": sum(len(e) for e in engines),
            "lookups": sum(e.lookups() for e in engines),
            "hits": sum(e.hits for e in engines),
            "misses": sum(e.misses for e in engines),
            "coalesced": sum(e.coalesced for e in engines),
            "negative_hits": sum(e.negative_hits for e in engines),
            "invalidation_events": sum(e.invalidation_events for e in engines),
            "subscriptions": sum(e.subscription_count() for e in engines),
            "resident_hits": sum(e.resident_hits for e in engines),
            "deltas_applied": sum(e.deltas_applied for e in engines),
            "duplicate_deltas": sum(e.duplicate_deltas for e in engines),
            "subscriptions_adopted": sum(e.subscriptions_adopted for e in engines),
            "adoptions_stale": sum(e.adoptions_stale for e in engines),
        }
        lookups = totals["lookups"]

        def rate(count: int) -> float:
            return count / lookups if lookups else 0.0

        totals["hit_rate"] = rate(totals["hits"])
        totals["coalesce_rate"] = rate(totals["coalesced"])
        totals["negative_hit_rate"] = rate(totals["negative_hits"])
        totals["resident_hit_rate"] = rate(totals["resident_hits"])
        return totals

    def summary(self) -> dict[str, object]:
        """Return the cluster's headline numbers plus per-shard summaries."""
        per_shard = {name: c.summary() for name, c in self.replicas.items()}
        return {
            "shards": len(self.replicas),
            "live_shards": self.shard_map.live_shards(),
            "decisions_total": self.decided_total(),
            "pending_total": self.pending_total(),
            "failovers": self.failovers,
            "repunted_flows": self.repunted_flows,
            "repunted_messages": self.repunted_messages,
            "path_installs": sum(
                c.path_install_count() for c in self.replicas.values()
            ),
            "path_unwinds": sum(c.path_unwinds for c in self.replicas.values()),
            "query_engine": self.query_engine_summary(),
            "shard_map": self.shard_map.stats(),
            "monitor": self.monitor.stats(),
            "coordinator": self.coordinator.stats(),
            "per_shard": per_shard,
        }

    def __repr__(self) -> str:
        return (
            f"ControllerCluster({self.name!r}, shards={len(self.replicas)}, "
            f"live={len(self.shard_map.live_shards())})"
        )
