"""Consistent-hash assignment of flows to controller shards.

The single ident++ controller (§3.4) is the scalability chokepoint:
every new flow punts to one decision loop.  The cluster splits that load across N
replicas with a consistent-hash ring — each shard owns many virtual
nodes, a flow hashes to the first virtual node clockwise from its own
hash — so

* assignment is **deterministic**: every switch, with no coordination,
  routes a given flow to the same shard;
* assignment is **symmetric**: a flow and its reverse hash to the same
  shard (the endpoint pair is ordered canonically before hashing), so
  ``keep state`` punts of reply traffic land on the shard that holds
  the state;
* failure is **minimally disruptive**: marking a shard dead re-homes
  only *its* arc of the ring onto the successors — every other flow
  keeps its owner, so live caches and pending tables stay valid.

Hashes are SHA-256 (:func:`repro.crypto.hashing.sha256_int`), so the
ring is stable across processes and runs.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Optional, Sequence

from repro.crypto.hashing import sha256_int
from repro.exceptions import TopologyError
from repro.identpp.flowspec import FlowSpec

#: Virtual nodes per shard.  More vnodes → tighter load balance (the
#: cluster scale benchmark is gated on 4 shards ≥ 3x one shard, which
#: needs the largest shard to stay near 1/N of the flows).
DEFAULT_VNODES = 128

#: Ring positions are 64-bit so bisection stays cheap.
_RING_BITS = 64
_RING_MASK = (1 << _RING_BITS) - 1


def _position(label: str) -> int:
    """Return the stable ring position for a label."""
    return sha256_int(label) & _RING_MASK


def flow_key(flow: FlowSpec) -> str:
    """Return the canonical (direction-independent) hash key of a flow.

    The endpoint pair is ordered so ``a->b`` and ``b->a`` share a key:
    reply traffic of a ``keep state`` decision (PF's stateful pass,
    §3.2) must punt to the shard that cached the decision.
    """
    forward = (str(flow.src_ip), flow.src_port)
    reverse = (str(flow.dst_ip), flow.dst_port)
    first, second = sorted((forward, reverse))
    return f"{first[0]}:{first[1]}|{second[0]}:{second[1]}|{flow.proto}"


class ShardMap:
    """A consistent-hash ring over named controller shards."""

    def __init__(self, shards: Iterable[str], *, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes <= 0:
            raise TopologyError(f"vnodes must be positive (got {vnodes})")
        self.vnodes = vnodes
        self._shards: list[str] = []
        self._dead: set[str] = set()
        # Sorted, parallel arrays of (position, shard) — rebuilt on
        # membership change, binary-searched per lookup.
        self._positions: list[int] = []
        self._owners: list[str] = []
        self.lookups = 0
        for shard in shards:
            self.add_shard(shard)
        if not self._shards:
            raise TopologyError("a shard map needs at least one shard")

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add_shard(self, shard: str) -> None:
        """Add a shard's virtual nodes to the ring."""
        if shard in self._shards:
            raise TopologyError(f"shard {shard!r} already in the ring")
        self._shards.append(shard)
        self._rebuild()

    def remove_shard(self, shard: str) -> None:
        """Remove a shard from the ring entirely (planned decommission)."""
        if shard not in self._shards:
            raise TopologyError(f"shard {shard!r} not in the ring")
        if all(s == shard or s in self._dead for s in self._shards):
            raise TopologyError("cannot remove the last live shard from the ring")
        self._shards.remove(shard)
        self._dead.discard(shard)
        self._rebuild()

    def mark_dead(self, shard: str) -> None:
        """Mark a shard failed: lookups skip it, its ring arc re-homes.

        The shard's virtual nodes stay on the ring so :meth:`revive`
        restores the exact pre-failure assignment.
        """
        if shard not in self._shards:
            raise TopologyError(f"shard {shard!r} not in the ring")
        if all(s == shard or s in self._dead for s in self._shards):
            raise TopologyError("cannot mark the last live shard dead")
        self._dead.add(shard)

    def revive(self, shard: str) -> None:
        """Return a dead shard to service (its original arc comes back)."""
        if shard not in self._shards:
            raise TopologyError(f"shard {shard!r} not in the ring")
        self._dead.discard(shard)

    def shards(self) -> list[str]:
        """Return every shard on the ring (dead ones included)."""
        return list(self._shards)

    def live_shards(self) -> list[str]:
        """Return the shards currently taking traffic."""
        return [shard for shard in self._shards if shard not in self._dead]

    def is_live(self, shard: str) -> bool:
        """Return whether a shard is live."""
        return shard in self._shards and shard not in self._dead

    def _rebuild(self) -> None:
        ring = []
        for shard in self._shards:
            for vnode in range(self.vnodes):
                ring.append((_position(f"{shard}#{vnode}"), shard))
        ring.sort()
        self._positions = [position for position, _ in ring]
        self._owners = [shard for _, shard in ring]

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def owner(self, flow: FlowSpec) -> str:
        """Return the live shard that owns ``flow``."""
        return self.owner_of_key(flow_key(flow))

    def owner_of_key(self, key: str) -> str:
        """Return the live shard owning an arbitrary hash key."""
        self.lookups += 1
        start = self._bisect(_position(key))
        count = len(self._owners)
        for offset in range(count):
            shard = self._owners[(start + offset) % count]
            if shard not in self._dead:
                return shard
        raise TopologyError("no live shard in the ring")

    def preference(self, flow: FlowSpec) -> list[str]:
        """Return live shards in failover order for ``flow``.

        The owner comes first, then each successor in ring order — the
        order a switch tries channels in when one is down.
        """
        return self.preference_of_key(flow_key(flow))

    def preference_of_key(self, key: str) -> list[str]:
        """Return the failover order for an arbitrary hash key."""
        return list(self.iter_preference_of_key(key))

    def iter_preference_of_key(self, key: str):
        """Yield the failover order lazily (the punt hot path).

        Punt routing usually consumes only the first shard (its channel
        is up), so the generator stops after a short walk to the first
        live vnode instead of scanning the whole ring per packet.
        """
        self.lookups += 1
        start = self._bisect(_position(key))
        count = len(self._owners)
        remaining = len(self.live_shards())
        seen: set[str] = set()
        for offset in range(count):
            if not remaining:
                return
            shard = self._owners[(start + offset) % count]
            if shard not in self._dead and shard not in seen:
                seen.add(shard)
                remaining -= 1
                yield shard

    def successor(self, flow: FlowSpec, failed: str) -> Optional[str]:
        """Return who adopts ``flow`` when ``failed`` is dead."""
        for shard in self.preference(flow):
            if shard != failed:
                return shard
        return None

    def _bisect(self, position: int) -> int:
        """Return the ring index of the first vnode at/after ``position``."""
        index = bisect.bisect_left(self._positions, position)
        return index % len(self._positions)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def assignment_counts(self, flows: Sequence[FlowSpec]) -> dict[str, int]:
        """Return how many of ``flows`` each live shard owns (balance probe)."""
        counts = {shard: 0 for shard in self.live_shards()}
        for flow in flows:
            counts[self.owner(flow)] += 1
        return counts

    def stats(self) -> dict[str, object]:
        """Return ring shape and usage counters."""
        return {
            "shards": len(self._shards),
            "live_shards": len(self.live_shards()),
            "dead_shards": sorted(self._dead),
            "vnodes_per_shard": self.vnodes,
            "ring_size": len(self._owners),
            "lookups": self.lookups,
        }

    def __len__(self) -> int:
        return len(self._shards)

    def __repr__(self) -> str:
        return (
            f"ShardMap(shards={len(self._shards)}, live={len(self.live_shards())}, "
            f"vnodes={self.vnodes})"
        )
