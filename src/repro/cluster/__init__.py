"""Sharded controller cluster: the scale-out control plane.

* :mod:`repro.cluster.shard_map` — consistent-hash ring assigning each
  flow 5-tuple (direction-independently) to a controller shard.
* :mod:`repro.cluster.cluster` — :class:`ControllerCluster`, fronting N
  ident++ controller replicas; switches hold one channel per replica
  and punt each flow to its owning shard.
* :mod:`repro.cluster.failover` — heartbeat-driven failure detection,
  ring re-homing and re-punting of a dead shard's in-flight flows
  (including its path-install registry, so multi-hop flow state
  installed "along the path", §3.4, still unwinds after a crash).
* :mod:`repro.cluster.coordinator` — cluster-wide propagation of policy
  reloads and delegation grants/revocations, with origin-shard audit.
"""

from repro.cluster.cluster import ControllerCluster
from repro.cluster.coordinator import ClusterChangeRecord, ClusterCoordinator
from repro.cluster.failover import FailoverMonitor
from repro.cluster.shard_map import ShardMap, flow_key

__all__ = [
    "ControllerCluster",
    "ClusterChangeRecord",
    "ClusterCoordinator",
    "FailoverMonitor",
    "ShardMap",
    "flow_key",
]
