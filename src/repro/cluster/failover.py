"""Heartbeat-driven shard failure detection and pending-flow re-punt.

The paper's centralised controller (§3.4) is also a single point of
failure; the sharded cluster removes it only if a dead replica's
in-flight work is re-homed rather than stranded.  A dead replica
strands three kinds of flows:

1. flows in its ``_pending`` table — punts it accepted but never
   decided (queries or the decision event froze with the process);
2. punts that were in flight on its control channels when it died (the
   dead process's socket backlog, modelled by the halted inbox);
3. *future* punts — prevented structurally, because killing a replica
   disconnects its channels and the switch-side shard router skips
   disconnected channels on the spot.

The :class:`FailoverMonitor` closes 1 and 2: it polls each live shard
every ``heartbeat_interval`` of simulated time, counts consecutive
missed heartbeats (a halted replica answers none), and after
``miss_threshold`` misses declares the shard dead — marking its ring
arc over to the successors and re-punting every orphaned flow to the
shard that now owns it.  Adopted flows run the normal punt pipeline on
the successor, including PR 2's fail-closed pending deadline, so even a
decision lost *twice* ends as an audited drop rather than a stranded
buffer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import ControllerCluster
    from repro.netsim.events import RepeatingEvent

#: How often the monitor polls shard liveness (simulated seconds).
DEFAULT_HEARTBEAT_INTERVAL = 0.05

#: Consecutive missed heartbeats before a shard is declared dead.
DEFAULT_MISS_THRESHOLD = 2


class FailoverMonitor:
    """Detects dead shards by missed heartbeats and triggers re-homing."""

    def __init__(
        self,
        cluster: "ControllerCluster",
        *,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        miss_threshold: int = DEFAULT_MISS_THRESHOLD,
    ) -> None:
        if heartbeat_interval <= 0:
            raise SimulationError(
                f"heartbeat interval must be positive (got {heartbeat_interval})"
            )
        if miss_threshold < 1:
            raise SimulationError(
                f"miss threshold must be at least 1 (got {miss_threshold})"
            )
        self.cluster = cluster
        self.heartbeat_interval = heartbeat_interval
        self.miss_threshold = miss_threshold
        self.ticks = 0
        self.detections = 0
        self._misses: dict[str, int] = {}
        self._armed = False
        self._event: Optional["RepeatingEvent"] = None

    @property
    def running(self) -> bool:
        """Return whether the monitor is currently polling."""
        return self._armed

    def start(self) -> None:
        """Begin polling on the cluster's simulator clock.

        The repeating event keeps itself scheduled only while armed, so
        :meth:`stop` lets the event queue drain (simulations can still
        run to completion).
        """
        if self._armed:
            return
        sim = self.cluster.sim
        if sim is None:
            raise SimulationError("failover monitor needs a simulator attached")
        self._armed = True
        self._event = sim.schedule_repeating(
            self.heartbeat_interval, self._tick, label="cluster:heartbeat"
        )

    def stop(self) -> None:
        """Stop polling (pending tick is cancelled)."""
        self._armed = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> bool:
        """One heartbeat round: poll every live shard, fail the silent ones."""
        if not self._armed:
            return False
        self.ticks += 1
        for name in self.cluster.shard_map.live_shards():
            controller = self.cluster.replicas[name]
            if controller.halted:
                misses = self._misses.get(name, 0) + 1
                self._misses[name] = misses
                if misses < self.miss_threshold:
                    continue
                if len(self.cluster.shard_map.live_shards()) <= 1:
                    # Nobody left to adopt the flows: keep the shard
                    # suspected instead of wedging the ring.  Its flows
                    # stay frozen until a replica is restored; the
                    # switches already fail per their fail_mode.
                    continue
                self.detections += 1
                self._misses.pop(name, None)
                self.cluster.fail_over(name)
            else:
                self._misses.pop(name, None)
        return self._armed

    def note_revived(self, shard: str) -> None:
        """Forget miss history for a shard brought back to service."""
        self._misses.pop(shard, None)

    def stats(self) -> dict[str, object]:
        """Return monitor counters."""
        return {
            "running": self._armed,
            "heartbeat_interval": self.heartbeat_interval,
            "miss_threshold": self.miss_threshold,
            "ticks": self.ticks,
            "detections": self.detections,
            "suspected": dict(self._misses),
        }
