"""Cluster-wide propagation of policy and delegation changes.

Each shard owns its own :class:`~repro.core.policy_engine.PolicyEngine`
and :class:`~repro.core.delegation.DelegationManager`, so without a
coordinator a ruleset reload or a ``revoke_delegation`` on one replica
would leave the others enforcing stale policy — exactly the revocation
hole the paper's centralised design closes ("override, audit, and
revoke the delegation when necessary", §7).

The :class:`ClusterCoordinator` applies every change to every **live**
replica inside one call, bumps a cluster epoch, and keeps an audit
trail whose entries name the **originating shard** and the replicas the
change reached.  Crashed (halted) replicas cannot observe changes — the
coordinator records how far each replica has applied and replays the
missed changes when :meth:`resync` runs on restore, so a revived shard
never enforces a revoked grant or stale rules.  Policy reloads are
validated (parsed *and* compiled) against a scratch evaluator before
any replica is touched, so a broken ruleset fails atomically at reload
time instead of diverging the cluster or deferring the error into one
shard's punt path.  ``verify_converged()`` cross-checks the live
replicas' ruleset/delegation epochs so tests and soaks can assert
propagation actually happened.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.controller import IdentPPController
from repro.exceptions import DelegationError
from repro.pf.evaluator import PolicyEvaluator
from repro.pf.ruleset import RulesetLoader

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import ControllerCluster


@dataclass(frozen=True)
class ClusterChangeRecord:
    """One cluster-wide configuration change, as audited."""

    epoch: int
    time: float
    kind: str  # "policy_reload" | "grant" | "revocation" | "quarantine" | "subscription_rehome"
    origin_shard: str
    detail: str
    applied_to: tuple[str, ...]
    removed_entries: int = 0


class ClusterCoordinator:
    """Fans configuration changes out to every replica of a cluster."""

    def __init__(self, cluster: "ControllerCluster") -> None:
        self.cluster = cluster
        #: Bumped once per cluster-wide change (reload, grant, revoke).
        self.epoch = 0
        self._audit: list[ClusterChangeRecord] = []
        # The change log (epoch → apply function) and how far each
        # replica has applied it; a restored replica replays the gap.
        self._changes: list[tuple[int, Callable[[IdentPPController], int]]] = []
        self._applied: dict[str, int] = {name: 0 for name in cluster.replicas}
        self.resyncs = 0

    # ------------------------------------------------------------------
    # Policy propagation
    # ------------------------------------------------------------------

    def set_policy(
        self,
        files: dict[str, str],
        *,
        provenance: str = "administrator",
        origin_shard: Optional[str] = None,
    ) -> ClusterChangeRecord:
        """Load ``.control`` files on every live replica, atomically.

        The merged ruleset is parsed and compiled against a scratch
        evaluator first; a broken file raises here, before any replica
        is touched, so the cluster never half-applies a reload.
        """
        self._validate_reload(files)

        def apply(controller: IdentPPController) -> int:
            controller.policy.add_control_files(files, provenance=provenance)
            controller.policy.rebuild()
            return 0

        return self._propagate(
            "policy_reload", origin_shard, f"files={sorted(files)}", apply
        )

    def remove_policy_file(
        self, name: str, *, origin_shard: Optional[str] = None
    ) -> ClusterChangeRecord:
        """Drop a ``.control`` file cluster-wide."""

        def apply(controller: IdentPPController) -> int:
            if controller.policy.remove_control_file(name):
                controller.policy.rebuild()
            return 0

        return self._propagate(
            "policy_reload", origin_shard, f"removed={name}", apply
        )

    def _validate_reload(self, files: dict[str, str]) -> None:
        """Dry-run a reload: parse + compile the would-be merged ruleset.

        Uses a scratch loader seeded from a **live** replica's current
        files (every live replica holds the same set — all changes flow
        through here, and crashed ones resync), so validation sees
        exactly what the replicas would build.  A halted replica's file
        set may be stale and would validate the wrong merge.
        """
        reference = next(
            (c for c in self.cluster.replicas.values() if not c.halted),
            next(iter(self.cluster.replicas.values())),
        )
        scratch = RulesetLoader()
        for control_file in reference.policy.loader.files():
            scratch.add_file(
                control_file.name, control_file.text,
                provenance=control_file.provenance,
            )
        for name, text in files.items():
            scratch.add_file(name, text)
        # PolicyEvaluator construction compiles the rules, so compile-time
        # errors are caught here too, not just parse errors.
        PolicyEvaluator(
            scratch.build(),
            registry=reference.policy.registry,
            default_action=reference.policy.default_action,
            name="cluster-reload-validation",
        )

    # ------------------------------------------------------------------
    # Delegation propagation
    # ------------------------------------------------------------------

    def grant_delegation(
        self,
        principal: str,
        key,
        *,
        scope: str = "",
        origin_shard: Optional[str] = None,
    ) -> ClusterChangeRecord:
        """Grant a principal on every live replica (same key everywhere)."""

        def apply(controller: IdentPPController) -> int:
            if not controller.delegations.is_active(principal):
                controller.delegations.grant(
                    principal, key, scope=scope, now=controller.now
                )
            return 0

        return self._propagate(
            "grant", origin_shard, f"principal={principal}", apply
        )

    def revoke_delegation(
        self, principal: str, *, origin_shard: Optional[str] = None
    ) -> ClusterChangeRecord:
        """Revoke a grant cluster-wide, tearing down reliant state everywhere.

        Each live replica that holds the grant revokes it and removes
        the flow entries / cache lines its own decisions created (the
        per-replica :meth:`~repro.core.controller.IdentPPController.revoke_delegation`);
        crashed replicas pick the revocation up at :meth:`resync` — the
        revocation is recorded even during a total outage, so no shard
        can be revived still enforcing it.  Raises
        :class:`~repro.exceptions.DelegationError` only when no replica,
        live or crashed, knows the principal.
        """
        if not any(
            c.delegations.is_active(principal)
            for c in self.cluster.replicas.values()
        ):
            raise DelegationError(
                f"no replica holds an active grant for principal {principal!r}"
            )

        # Gather every replica's decision cookies for the grant before
        # revoking: a failover may have re-homed a cookie's path-install
        # registry to a replica other than the one that decided it, and
        # the (silent) entry removal below means no FlowRemoved will
        # ever clean that registry up.
        revoked_cookies = frozenset(
            cookie
            for c in self.cluster.replicas.values()
            for cookie in c.delegations.decisions_for(principal)
        )

        def apply(controller: IdentPPController) -> int:
            removed = 0
            if controller.delegations.is_active(principal):
                removed = controller.revoke_delegation(principal)
            for cookie in revoked_cookies:
                controller.discard_path_install(cookie)
            return removed

        return self._propagate(
            "revocation", origin_shard, f"principal={principal}", apply
        )

    # ------------------------------------------------------------------
    # Quarantine propagation
    # ------------------------------------------------------------------

    def quarantine_host(
        self, host_ip, *, origin_shard: Optional[str] = None
    ) -> ClusterChangeRecord:
        """Quarantine a host on every live replica.

        Each replica runs its own
        :meth:`~repro.core.controller.IdentPPController.quarantine_host`
        (quick-block policy, cached-decision revocation, query-engine
        invalidation, datapath drop entries); the change rides the
        replay log like any other, so a crashed shard picks the
        quarantine up at :meth:`resync` and can never be revived still
        trusting the host.  The telemetry plane's auto-quarantine
        responder is the main caller.
        """
        ip = str(host_ip)

        def apply(controller: IdentPPController) -> int:
            controller.quarantine_host(ip)
            return 0

        return self._propagate("quarantine", origin_shard, f"host={ip}", apply)

    # ------------------------------------------------------------------
    # Push-subscription re-homing (failover)
    # ------------------------------------------------------------------

    def rehome_subscriptions(
        self, host_ips, *, origin_shard: Optional[str] = None
    ) -> ClusterChangeRecord:
        """Commit a failover's subscription re-home to the replay log.

        :meth:`ControllerCluster.fail_over` already handed the dead
        shard's exported push state to each host's live successor; this
        records the re-home as a cluster change so (a) the audit trail
        names which hosts moved and why, and (b) a shard revived later
        *replays* it at :meth:`resync` — re-registering standing
        interest in the hosts it now owns instead of rebuilding
        residency from cold punt history.  The apply closure re-resolves
        ownership at apply time, so replays always subscribe the
        current owner, never a snapshot of the ring at failover time.
        """
        from repro.cluster.cluster import identity_key

        hosts = tuple(sorted({str(ip) for ip in host_ips}))

        def apply(controller: IdentPPController) -> int:
            opened = 0
            for ip in hosts:
                owner = self.cluster.shard_map.owner_of_key(identity_key(ip))
                if owner == controller.name and controller.query_engine.subscribe_host(ip):
                    opened += 1
            return opened

        return self._propagate(
            "subscription_rehome", origin_shard, f"hosts={list(hosts)}", apply
        )

    # ------------------------------------------------------------------
    # Propagation + crash recovery
    # ------------------------------------------------------------------

    def _propagate(
        self,
        kind: str,
        origin_shard: Optional[str],
        detail: str,
        apply: Callable[[IdentPPController], int],
    ) -> ClusterChangeRecord:
        """Apply a change to every live replica, then commit it to the log.

        Application runs before the epoch bump and the replay-log
        append: a change that raises (e.g. a key the keystore rejects —
        which fails deterministically on the *first* replica, before any
        state moves) leaves no epoch, no audit entry and, crucially, no
        poisoned closure for :meth:`resync` to re-raise on every future
        restore.
        """
        next_epoch = self.epoch + 1
        applied = []
        removed = 0
        for name, controller in self.cluster.replicas.items():
            if controller.halted:
                # A crashed process observes nothing; resync() replays.
                continue
            removed += apply(controller)
            applied.append(name)
        self.epoch = next_epoch
        self._changes.append((next_epoch, apply))
        for name in applied:
            self._applied[name] = next_epoch
        record = ClusterChangeRecord(
            epoch=next_epoch,
            time=self.cluster.now,
            kind=kind,
            origin_shard=origin_shard if origin_shard is not None else "administrator",
            detail=detail,
            applied_to=tuple(applied),
            removed_entries=removed,
        )
        self._audit.append(record)
        self._prune_changes()
        return record

    def resync(self, shard: str) -> int:
        """Replay the changes a restored replica missed while crashed.

        Returns how many changes were replayed.  Called by
        :meth:`ControllerCluster.restore` so a revived shard converges
        before taking traffic.
        """
        controller = self.cluster.replicas[shard]
        last = self._applied.get(shard, 0)
        replayed = 0
        for epoch, apply in self._changes:
            if epoch > last:
                apply(controller)
                replayed += 1
        self._applied[shard] = self.epoch
        if replayed:
            self.resyncs += 1
        self._prune_changes()
        return replayed

    def _prune_changes(self) -> None:
        """Drop replay-log entries every replica has already applied.

        The closures capture whole rulesets; without pruning the log
        would grow for the cluster's lifetime — unbounded state, in a
        system whose churn story is that nothing is.  With all replicas
        caught up the log is empty.
        """
        floor = min(self._applied.values())
        self._changes = [
            (epoch, apply) for epoch, apply in self._changes if epoch > floor
        ]

    # ------------------------------------------------------------------
    # Convergence checks + audit
    # ------------------------------------------------------------------

    def epochs(self) -> dict[str, dict[str, int]]:
        """Return each replica's (ruleset, delegation, applied) epochs."""
        return {
            name: {
                "ruleset": controller.policy_epoch,
                "delegation": controller.delegation_epoch,
                "applied": self._applied.get(name, 0),
            }
            for name, controller in self.cluster.replicas.items()
        }

    def verify_converged(self) -> bool:
        """Return whether every live replica sits at the same epochs.

        Crashed replicas are excluded — they converge at resync; a
        restored replica counts again immediately.
        """
        live = {
            name: epochs
            for name, epochs in self.epochs().items()
            if not self.cluster.replicas[name].halted
        }
        return len({tuple(sorted(e.items())) for e in live.values()}) <= 1

    def audit_trail(self) -> list[ClusterChangeRecord]:
        """Return every cluster-wide change, in order."""
        return list(self._audit)

    def stats(self) -> dict[str, object]:
        """Return headline coordinator numbers."""
        kinds: dict[str, int] = {}
        for record in self._audit:
            kinds[record.kind] = kinds.get(record.kind, 0) + 1
        return {
            "epoch": self.epoch,
            "changes": len(self._audit),
            "by_kind": kinds,
            "resyncs": self.resyncs,
            "converged": self.verify_converged(),
        }
