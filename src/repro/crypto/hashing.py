"""Hashing helpers.

The ident++ daemon reports the "hash ... of the executable" (§2) and
signatures cover the executable hash (Figures 3–7).  Simulated
executables are just named byte strings, so the helpers here produce
stable hex digests for them.
"""

from __future__ import annotations

import hashlib


def _to_bytes(data: bytes | str) -> bytes:
    """UTF-8 encode strings, tolerating lone surrogates.

    Signed values come from untrusted ident++ responses, so hashing must
    be total over arbitrary Python strings: ``surrogatepass`` gives lone
    surrogates (which strict UTF-8 rejects) a stable byte encoding
    instead of raising mid-signature.
    """
    if isinstance(data, str):
        return data.encode("utf-8", "surrogatepass")
    return data


def sha256_hex(data: bytes | str) -> str:
    """Return the SHA-256 hex digest of ``data`` (strings are UTF-8 encoded)."""
    return hashlib.sha256(_to_bytes(data)).hexdigest()


def sha256_int(data: bytes | str) -> int:
    """Return the SHA-256 digest of ``data`` as an integer (used for RSA signing)."""
    return int.from_bytes(hashlib.sha256(_to_bytes(data)).digest(), "big")


def executable_hash(path: str, contents: bytes | str | None = None, version: str = "") -> str:
    """Return a stable hash for a simulated executable image.

    Real deployments hash the binary on disk; the simulation derives the
    hash from the executable path, its synthetic contents and version so
    that two hosts running "the same binary" report the same hash while a
    trojaned or upgraded binary reports a different one.
    """
    if contents is None:
        contents = b""
    return sha256_hex(
        _to_bytes(path) + b"\x00" + _to_bytes(contents) + b"\x00" + _to_bytes(version)
    )
