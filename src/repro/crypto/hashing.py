"""Hashing helpers.

The ident++ daemon reports the "hash ... of the executable" (§2) and
signatures cover the executable hash (Figures 3–7).  Simulated
executables are just named byte strings, so the helpers here produce
stable hex digests for them.
"""

from __future__ import annotations

import hashlib


def sha256_hex(data: bytes | str) -> str:
    """Return the SHA-256 hex digest of ``data`` (strings are UTF-8 encoded)."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def sha256_int(data: bytes | str) -> int:
    """Return the SHA-256 digest of ``data`` as an integer (used for RSA signing)."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return int.from_bytes(hashlib.sha256(data).digest(), "big")


def executable_hash(path: str, contents: bytes | str | None = None, version: str = "") -> str:
    """Return a stable hash for a simulated executable image.

    Real deployments hash the binary on disk; the simulation derives the
    hash from the executable path, its synthetic contents and version so
    that two hosts running "the same binary" report the same hash while a
    trojaned or upgraded binary reports a different one.
    """
    if contents is None:
        contents = b""
    if isinstance(contents, str):
        contents = contents.encode("utf-8")
    return sha256_hex(path.encode("utf-8") + b"\x00" + contents + b"\x00" + version.encode("utf-8"))
