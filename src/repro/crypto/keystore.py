"""A named store of public keys.

The controller configuration in Figures 5 and 7 declares public keys in
``dict <pubkeys>`` blocks; :class:`KeyStore` is the runtime object those
blocks populate, mapping a principal name ("research", "admin", "Secur")
to a serialised public key.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.exceptions import KeyError_
from repro.crypto.rsa import RSAPublicKey
from repro.crypto.signatures import Signer


class KeyStore:
    """Maps principal names to public keys (stored in hex form)."""

    def __init__(self) -> None:
        self._keys: dict[str, str] = {}

    def add(self, name: str, key: RSAPublicKey | Signer | str) -> None:
        """Register a public key under ``name``.

        Accepts a :class:`RSAPublicKey`, a :class:`Signer` (its public key
        is taken) or an already-serialised hex string.
        """
        if isinstance(key, Signer):
            key = key.public_key
        if isinstance(key, RSAPublicKey):
            key = key.to_hex()
        if not isinstance(key, str) or not key:
            raise KeyError_(f"cannot store key of type {type(key).__name__} for {name!r}")
        self._keys[name] = key

    def get(self, name: str) -> str:
        """Return the hex-serialised key for ``name``.

        Raises :class:`~repro.exceptions.KeyError_` if the name is unknown.
        """
        try:
            return self._keys[name]
        except KeyError as exc:
            raise KeyError_(f"no public key registered for {name!r}") from exc

    def lookup(self, name: str) -> Optional[str]:
        """Return the key for ``name`` or ``None`` when unknown."""
        return self._keys.get(name)

    def public_key(self, name: str) -> RSAPublicKey:
        """Return the key for ``name`` parsed into an :class:`RSAPublicKey`."""
        return RSAPublicKey.from_hex(self.get(name))

    def remove(self, name: str) -> None:
        """Delete the key registered under ``name`` (revocation)."""
        if name not in self._keys:
            raise KeyError_(f"no public key registered for {name!r}")
        del self._keys[name]

    def names(self) -> list[str]:
        """Return all registered principal names, sorted."""
        return sorted(self._keys)

    def as_pf_dict(self) -> dict[str, str]:
        """Return the mapping in the form PF+=2 ``dict`` lookups expect."""
        return dict(self._keys)

    def __contains__(self, name: str) -> bool:
        return name in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._keys))
