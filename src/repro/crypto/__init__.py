"""Public-key signature substrate.

Figures 3–7 of the paper rely on signed rule snippets: a user or a
third-party security company signs ``(exe-hash, app-name, requirements)``
and the controller's ``verify()`` PF+=2 function checks the signature
before honouring delegated rules.  No cryptography library is available
offline, so this package implements a small, self-contained textbook RSA
scheme (Miller–Rabin key generation, SHA-256 hash-then-sign) that offers
the same API surface and the same failure modes: any tampering with the
signed data, the signature or the key makes verification fail.

This code is a *simulation substrate*, not production cryptography — see
DESIGN.md §2 for the substitution rationale.
"""

from repro.crypto.hashing import executable_hash, sha256_hex
from repro.crypto.keystore import KeyStore
from repro.crypto.rsa import RSAKeyPair, RSAPrivateKey, RSAPublicKey, generate_keypair
from repro.crypto.signatures import (
    Signer,
    canonical_message,
    sign_values,
    verify_values,
)

__all__ = [
    "executable_hash",
    "sha256_hex",
    "KeyStore",
    "RSAKeyPair",
    "RSAPrivateKey",
    "RSAPublicKey",
    "generate_keypair",
    "Signer",
    "canonical_message",
    "sign_values",
    "verify_values",
]
