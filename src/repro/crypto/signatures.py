"""Requirement-signature canonicalisation, signing and verification.

The paper's ``verify`` PF+=2 function (§3.3) is called as::

    with verify(@dst[req-sig], @pubkeys[research], @dst[exe-hash],
                @dst[app-name], @dst[requirements])

i.e. a signature, a public key and then an arbitrary list of data values.
The signed message must therefore be a *canonical* encoding of that value
list so that the signer (the user editing the daemon configuration file)
and the verifier (the controller evaluating a rule) agree byte for byte.
This module defines that canonical form and small convenience wrappers
around :mod:`repro.crypto.rsa`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.crypto.rsa import RSAKeyPair, RSAPublicKey, generate_keypair
from repro.exceptions import SignatureError

#: Separator used between canonicalised values.  The unit separator
#: control character cannot appear in PF+=2 values (they are single-line
#: printable strings), so concatenation is unambiguous.
_CANONICAL_SEPARATOR = "\x1f"


def canonical_message(values: Sequence[object]) -> str:
    """Return the canonical string covering an ordered list of values.

    Values are converted with ``str()``; whitespace inside values is
    preserved but leading/trailing whitespace is stripped, matching what
    the PF+=2 evaluator sees after parsing a response document.
    """
    parts = [str(value).strip() for value in values]
    return _CANONICAL_SEPARATOR.join(parts)


def sign_values(keypair: RSAKeyPair, values: Sequence[object]) -> str:
    """Sign an ordered list of values and return the hex signature."""
    return keypair.sign(canonical_message(values))


def verify_values(
    public_key: RSAPublicKey | str,
    signature: str,
    values: Sequence[object],
) -> bool:
    """Verify a signature over an ordered list of values.

    ``public_key`` may be an :class:`RSAPublicKey` or its hex
    serialisation (the form stored in PF+=2 ``dict <pubkeys>`` blocks).
    Malformed keys or signatures return ``False`` rather than raising:
    the controller must treat them as "not verified", never crash.
    """
    if isinstance(public_key, str):
        try:
            public_key = RSAPublicKey.from_hex(public_key)
        except SignatureError:
            return False
    if not isinstance(public_key, RSAPublicKey):
        return False
    return public_key.verify(canonical_message(values), signature)


class Signer:
    """A named signing identity (a user, an administrator, or a third party).

    Wraps a deterministic key pair and remembers what it has signed,
    which the audit trail and the security harness use to distinguish
    legitimate delegation from forgeries.
    """

    def __init__(self, name: str, *, bits: int = 512, seed: int | str | None = 0) -> None:
        self.name = name
        self.keypair = generate_keypair(name, bits=bits, seed=seed)
        self._signed_messages: list[str] = []

    @property
    def public_key(self) -> RSAPublicKey:
        """Return the signer's public key."""
        return self.keypair.public

    @property
    def public_key_hex(self) -> str:
        """Return the hex form of the public key (for PF+=2 ``dict`` blocks)."""
        return self.keypair.public.to_hex()

    def sign(self, values: Iterable[object]) -> str:
        """Sign an ordered list of values, recording the canonical message."""
        values = list(values)
        message = canonical_message(values)
        self._signed_messages.append(message)
        return self.keypair.sign(message)

    def signed_messages(self) -> list[str]:
        """Return the canonical messages this signer has produced (audit)."""
        return list(self._signed_messages)

    def verify(self, signature: str, values: Iterable[object]) -> bool:
        """Verify one of this signer's signatures."""
        return verify_values(self.public_key, signature, list(values))

    def __repr__(self) -> str:
        return f"Signer({self.name!r})"
