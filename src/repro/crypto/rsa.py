"""Textbook RSA key generation, signing and verification.

This is a deliberately small, dependency-free RSA implementation used as
a stand-in for real signature schemes (see DESIGN.md §2).  It supports:

* probabilistic prime generation (Miller–Rabin) with a deterministic
  seed option so tests and benchmarks are reproducible,
* hash-then-sign signatures over SHA-256 digests,
* serialisation of public keys to the short hex strings that appear in
  the paper's configuration listings (``sk3ajf...fa932``).

Do **not** use this module outside the simulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.exceptions import SignatureError
from repro.crypto.hashing import sha256_int

_DEFAULT_KEY_BITS = 512
_MILLER_RABIN_ROUNDS = 24
_PUBLIC_EXPONENT = 65537

_SMALL_PRIMES = (
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
)


def _is_probable_prime(candidate: int, rng: random.Random) -> bool:
    """Miller–Rabin primality test."""
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate % prime == 0:
            return candidate == prime
    # write candidate-1 as d * 2^r with d odd
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(_MILLER_RABIN_ROUNDS):
        a = rng.randrange(2, candidate - 1)
        x = pow(a, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a probable prime of exactly ``bits`` bits."""
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class RSAPublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int = _PUBLIC_EXPONENT

    def verify(self, message: bytes | str, signature: int | str) -> bool:
        """Return ``True`` if ``signature`` is a valid signature of ``message``."""
        try:
            signature_int = int(signature, 16) if isinstance(signature, str) else int(signature)
        except (ValueError, TypeError):
            return False
        if not 0 < signature_int < self.n:
            return False
        digest = sha256_int(message) % self.n
        return pow(signature_int, self.e, self.n) == digest

    def fingerprint(self, length: int = 16) -> str:
        """Return a short hex fingerprint, the form keys take in PF+=2 ``dict`` blocks."""
        from repro.crypto.hashing import sha256_hex

        return sha256_hex(self.to_hex())[:length]

    def to_hex(self) -> str:
        """Serialise to ``<e hex>.<n hex>``.

        The separator is a dot (not a colon) so the serialised key is a
        single PF+=2 word and can appear verbatim as a ``dict <pubkeys>``
        value, the way Figures 5 and 7 embed keys in controller
        configuration.
        """
        return f"{self.e:x}.{self.n:x}"

    @classmethod
    def from_hex(cls, text: str) -> "RSAPublicKey":
        """Parse a key serialised by :meth:`to_hex`."""
        try:
            e_text, separator, n_text = text.partition(".")
            if not separator or not n_text:
                raise ValueError("missing separator")
            return cls(n=int(n_text, 16), e=int(e_text, 16))
        except ValueError as exc:
            raise SignatureError(f"malformed public key: {text!r}") from exc


@dataclass(frozen=True)
class RSAPrivateKey:
    """An RSA private key ``(n, d)`` plus the matching public key."""

    n: int
    d: int
    public: RSAPublicKey

    def sign(self, message: bytes | str) -> str:
        """Return the hex-encoded signature of ``message`` (SHA-256 hash-then-sign)."""
        digest = sha256_int(message) % self.n
        signature = pow(digest, self.d, self.n)
        return f"{signature:x}"


@dataclass(frozen=True)
class RSAKeyPair:
    """A matching private/public key pair with an owner label."""

    owner: str
    private: RSAPrivateKey
    public: RSAPublicKey

    def sign(self, message: bytes | str) -> str:
        """Sign ``message`` with the private key."""
        return self.private.sign(message)

    def verify(self, message: bytes | str, signature: int | str) -> bool:
        """Verify ``signature`` over ``message`` with the public key."""
        return self.public.verify(message, signature)


#: Seed used when a caller supplies neither ``seed`` nor ``rng``.  Key
#: generation is *always* deterministic — the simulator's repo invariant
#: (lint rule R2) is that no randomness may come from an unseeded RNG,
#: because a single OS-entropy draw makes a whole scenario's event trace
#: unreproducible.
DEFAULT_KEY_SEED = 0


def generate_keypair(
    owner: str = "",
    *,
    bits: int = _DEFAULT_KEY_BITS,
    seed: int | str | None = None,
    rng: random.Random | None = None,
) -> RSAKeyPair:
    """Generate an RSA key pair, deterministically.

    Args:
        owner: Human-readable label ("research", "Secur", "admin", ...).
        bits: Modulus size in bits (default 512 — small, fast, *simulation only*).
        seed: Deterministic seed; the same ``(owner, seed, bits)`` always
            produces the same key pair, which keeps tests and benchmark
            fixtures stable.  Defaults to :data:`DEFAULT_KEY_SEED` —
            never to OS entropy, so two runs of any scenario mint the
            same keys and produce identical event traces.
        rng: An already-seeded :class:`random.Random` to draw from
            instead of constructing one from ``seed`` (callers that
            thread one scenario-wide RNG through every component).
    """
    if bits < 128:
        raise SignatureError(f"RSA modulus too small: {bits} bits")
    if rng is None:
        if seed is None:
            seed = DEFAULT_KEY_SEED
        rng = random.Random(f"{owner}|{seed}|{bits}")
    half = bits // 2
    while True:
        p = _generate_prime(half, rng)
        q = _generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        e = _PUBLIC_EXPONENT
        try:
            d = pow(e, -1, phi)
        except ValueError:
            continue
        public = RSAPublicKey(n=n, e=e)
        private = RSAPrivateKey(n=n, d=d, public=public)
        return RSAKeyPair(owner=owner, private=private, public=public)
