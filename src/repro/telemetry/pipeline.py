"""Layer 1 of the telemetry plane: probes, ring-buffered series, the sampler.

At the "millions of users" scale the roadmap targets nobody reads
``summary()`` dicts after the fact — the control plane needs streaming
signals it can judge *while the simulation runs*.  This module is the
ingestion side of that plane:

* :class:`TelemetryProbe` — a named, read-only tap over state the hot
  paths already maintain (a counter value, a table length, a cache
  ratio).  Probes do no bookkeeping of their own, so the per-sample
  cost is a handful of attribute reads — the <5% overhead budget the
  benchmarks gate on.
* :class:`TimeSeries` — a bounded ring buffer of ``(time, value)``
  samples.  Telemetry outlives any one burst, so the buffer drops the
  oldest points rather than growing for the run's lifetime (the same
  bounded-state rule the churn soaks enforce everywhere else).
* :class:`MetricsPipeline` — samples every probe (plus an optional
  :class:`~repro.netsim.statistics.StatsRegistry` snapshot) on virtual
  time via :meth:`~repro.netsim.events.Simulator.schedule_repeating`,
  then hands each completed sweep to its observers — the deviation
  monitor in :mod:`repro.telemetry.deviation`.

The sampler follows the repo's repeating-event contract: the callback
returns truthy only while the pipeline is running, so :meth:`stop`
lets the event queue drain and ``Simulator.run()`` terminate.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator, Optional

from repro.netsim.statistics import StatsRegistry

#: Default ring-buffer capacity per series (samples, not seconds).
DEFAULT_CAPACITY = 512


class TimeSeries:
    """A bounded ring buffer of ``(time, value)`` samples for one metric."""

    __slots__ = ("name", "capacity", "_points", "dropped")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"series {name!r}: capacity must be >= 1 (got {capacity})")
        self.name = name
        self.capacity = capacity
        self._points: deque[tuple[float, float]] = deque(maxlen=capacity)
        #: Samples evicted by the ring bound — non-zero means the window
        #: no longer reaches back to the start of the run.
        self.dropped = 0

    def record(self, time: float, value: float) -> None:
        """Append one sample, evicting the oldest when full."""
        if len(self._points) == self.capacity:
            self.dropped += 1
        self._points.append((time, float(value)))

    def last(self) -> Optional[tuple[float, float]]:
        """Return the most recent ``(time, value)`` sample, if any."""
        return self._points[-1] if self._points else None

    def window(self, since: float) -> list[tuple[float, float]]:
        """Return the samples with ``time >= since`` (oldest first)."""
        return [(t, v) for t, v in self._points if t >= since]

    def values(self) -> list[float]:
        """Return every retained value (oldest first)."""
        return [v for _, v in self._points]

    def times(self) -> list[float]:
        """Return every retained sample time (oldest first)."""
        return [t for t, _ in self._points]

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(list(self._points))

    def __repr__(self) -> str:
        return f"TimeSeries({self.name!r}, n={len(self._points)}/{self.capacity})"


class TelemetryProbe:
    """A named tap reading one scalar from live simulation state.

    ``read`` is called with the current virtual time and must be cheap
    and side-effect-light: probes run on every sampling tick, inside
    the event loop.  Rate probes use the time argument to advance their
    :class:`~repro.netsim.statistics.RateCounter`; plain gauges ignore
    it.
    """

    __slots__ = ("name", "_read")

    def __init__(self, name: str, read: Callable[[float], float]) -> None:
        if not name:
            raise ValueError("telemetry probes must be named (anonymous probes "
                             "are invisible to detectors and reports)")
        self.name = name
        self._read = read

    def sample(self, now: float) -> float:
        """Read the probe's current value."""
        return float(self._read(now))

    def __repr__(self) -> str:
        return f"TelemetryProbe({self.name!r})"


class MetricsPipeline:
    """Samples probes into time series on the simulation clock."""

    def __init__(
        self,
        name: str = "telemetry",
        *,
        capacity: int = DEFAULT_CAPACITY,
        registry: Optional[StatsRegistry] = None,
    ) -> None:
        self.name = name
        self.capacity = capacity
        #: Optional stats registry folded into every sweep through
        #: ``registry.snapshot(now)``: counters become gauge series,
        #: rate counters become per-second series.
        self.registry = registry
        self._probes: dict[str, TelemetryProbe] = {}
        self._series: dict[str, TimeSeries] = {}
        self._updaters: list[Callable[[float], None]] = []
        self._observers: list[Callable[[float, "MetricsPipeline"], None]] = []
        self._running = False
        self._event = None
        self.samples = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def add_probe(self, probe: TelemetryProbe) -> TelemetryProbe:
        """Register a probe (and create its backing series)."""
        if probe.name in self._probes:
            raise ValueError(f"pipeline {self.name!r}: duplicate probe {probe.name!r}")
        self._probes[probe.name] = probe
        self._series[probe.name] = TimeSeries(probe.name, self.capacity)
        return probe

    def probe(self, name: str, read: Callable[[float], float]) -> TelemetryProbe:
        """Create and register a probe in one call."""
        return self.add_probe(TelemetryProbe(name, read))

    def add_updater(self, updater: Callable[[float], None]) -> None:
        """Register a pre-sample hook (runs before probes on each sweep).

        Used to advance rate counters from monotonic hot-path counters
        so both the registry snapshot and the rate probes see values
        current as of this tick.
        """
        self._updaters.append(updater)

    def on_sample(self, observer: Callable[[float, "MetricsPipeline"], None]) -> None:
        """Register an observer called after every completed sweep."""
        self._observers.append(observer)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def series(self, name: str) -> Optional[TimeSeries]:
        """Return a series by name (``None`` when it does not exist yet)."""
        return self._series.get(name)

    def series_names(self) -> list[str]:
        """Return every series name, sorted."""
        return sorted(self._series)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample(self, now: float) -> None:
        """Run one sweep: updaters, probes, registry snapshot, observers."""
        for updater in self._updaters:
            updater(now)
        for name, probe in self._probes.items():
            self._series[name].record(now, probe.sample(now))
        if self.registry is not None:
            for key, value in self.registry.snapshot(now).items():
                if isinstance(value, dict):
                    if "per_sec" not in value:
                        continue  # histogram summaries are not time series
                    point = value["per_sec"]
                else:
                    point = value
                series = self._series.get(key)
                if series is None:
                    series = self._series[key] = TimeSeries(key, self.capacity)
                series.record(now, float(point))
        self.samples += 1
        for observer in self._observers:
            observer(now, self)

    def start(self, sim, interval: float):
        """Begin sampling every ``interval`` of virtual time.

        Returns the underlying repeating event.  The callback keeps
        itself scheduled only while the pipeline is running, so
        :meth:`stop` lets the simulation drain to an empty queue.
        """
        if self._running:
            return self._event
        self._running = True

        def tick() -> bool:
            if not self._running:
                return False
            self.sample(sim.now)
            return self._running

        self._event = sim.schedule_repeating(
            interval, tick, label=f"telemetry:{self.name}"
        )
        return self._event

    def stop(self) -> None:
        """Stop sampling (the pending tick is cancelled)."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def running(self) -> bool:
        """Return whether the sampler is armed."""
        return self._running

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Return pipeline-level counters for reports."""
        return {
            "probes": len(self._probes),
            "series": len(self._series),
            "samples": self.samples,
            "dropped_points": sum(s.dropped for s in self._series.values()),
            "running": self._running,
        }
