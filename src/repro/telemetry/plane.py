"""The assembled telemetry plane: probes → series → detectors → alerts.

:class:`TelemetryPlane` wires the three layers over a live ident++
network (single-controller or cluster):

* per-shard probes — punt rate (windowed over ``packet_ins``), pending
  depth, serial-queue depth, query-engine hit/negative/coalesce ratios,
  push-plane resident ratio / subscription count / delta rate,
  heartbeat gap;
* per-switch probes — flow-table occupancy, FlowRemoved rate;
* cluster rollups — aggregate punt rate, aggregate hit ratio, total
  pending depth, failover count.

The default detector set maps the ISSUE's four failure signatures onto
those series (punt-rate spike → worm, hit-ratio collapse →
invalidation storm, pending-depth growth → daemon brownout,
heartbeat gap → shard loss), and the alert router drives the
auto-quarantine responder against the cluster coordinator's
quarantine path — closing the paper's detect-and-react loop without
any scripted ``mark_compromised``.

The plane is deliberately duck-typed against the network object (it
reads ``cluster``, ``controllers``, ``switches``, ``topology``) so
this package never imports from :mod:`repro.core` or
:mod:`repro.cluster` — no import cycles; ``IdentPPNetwork.
enable_telemetry()`` imports *us* locally instead.
"""

from __future__ import annotations

from typing import Optional

from repro.netsim.statistics import RateCounter
from repro.telemetry.alerting import KIND_QUARANTINE, AlertRouter, AutoQuarantineResponder
from repro.telemetry.deviation import (
    CollapseDetector,
    DeviationMonitor,
    GapDetector,
    GrowthDetector,
    SpikeDetector,
)
from repro.telemetry.pipeline import MetricsPipeline

#: Default sampling interval (virtual seconds).
DEFAULT_INTERVAL = 0.05

#: Heartbeat-gap bound as a multiple of the sampling interval: a live
#: shard's gap series stays ~0; a halted shard's grows one interval per
#: sweep, crossing this after a handful of ticks.
DEFAULT_GAP_MULTIPLE = 4.0

#: Absolute punt-rate floor (punts/vsec) below which the spike detector
#: stays silent.  On a near-idle network the EWMA baseline sits at ~0
#: with ~0 variance, so *any* scripted burst would read as a spike; a
#: worm signature additionally requires this much absolute punt traffic
#: (the conficker outbreak sprays well past 100/vsec).
DEFAULT_SPIKE_MIN_RATE = 10.0


class _ClusterAuditView:
    """Adapts ``ControllerCluster.audit_records()`` to the ``.records()``
    shape :class:`AutoQuarantineResponder` scans (an AuditLog look-alike
    merging every shard's trail in time order)."""

    __slots__ = ("_cluster",)

    def __init__(self, cluster) -> None:
        self._cluster = cluster

    def records(self):
        return self._cluster.audit_records()


class TelemetryPlane:
    """Probes, detectors and alerting assembled over one network."""

    def __init__(
        self,
        network,
        *,
        interval: float = DEFAULT_INTERVAL,
        capacity: int = 512,
        rate_window: float = 0.25,
        alert_cooldown: float = 0.1,
        auto_quarantine: bool = True,
        fanout_threshold: int = 8,
        attribution_window: float = 0.5,
        gap_multiple: float = DEFAULT_GAP_MULTIPLE,
        spike_warmup: int = 10,
        spike_min_rate: float = DEFAULT_SPIKE_MIN_RATE,
        registry=None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"telemetry interval must be positive (got {interval})")
        self.network = network
        self.interval = interval
        self.cluster = getattr(network, "cluster", None)
        self.pipeline = MetricsPipeline(
            f"{network.name}.telemetry", capacity=capacity, registry=registry
        )
        self.monitor = DeviationMonitor()
        self.router = AlertRouter(cooldown=alert_cooldown)
        self.responder: Optional[AutoQuarantineResponder] = None
        self._rate_window = rate_window
        self._last_seen: dict[str, float] = {}
        self._rates: dict[str, RateCounter] = {}
        self._ratios: dict[str, dict[str, float]] = {}
        self._push: dict[str, dict[str, float]] = {}

        self._wire_probes()
        self._wire_detectors(
            gap_multiple=gap_multiple,
            spike_warmup=spike_warmup,
            spike_min_rate=spike_min_rate,
        )
        self.monitor.attach(self.pipeline)
        self.router.attach(self.monitor)
        if auto_quarantine:
            self._wire_quarantine(
                fanout_threshold=fanout_threshold, window=attribution_window
            )

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _controllers(self) -> dict[str, object]:
        """Return the control plane's controllers (shards or the default)."""
        return dict(self.network.controllers)

    def _rate(self, name: str) -> RateCounter:
        counter = self._rates.get(name)
        if counter is None:
            counter = self._rates[name] = RateCounter(name, self._rate_window)
        return counter

    def _wire_probes(self) -> None:
        pipe = self.pipeline
        controllers = self._controllers()

        # --- per-shard probes -----------------------------------------
        for name, controller in controllers.items():
            punt_rate = self._rate(f"{name}.punt_rate")
            pipe.add_updater(
                lambda now, rc=punt_rate, c=controller: rc.observe_total(
                    now, float(c.packet_ins.value)
                )
            )
            pipe.probe(f"{name}.punt_rate", lambda now, rc=punt_rate: rc.rate(now))
            pipe.probe(
                f"{name}.pending_depth",
                lambda now, c=controller: float(c.pending_depth()),
            )
            pipe.probe(
                f"{name}.serial_depth",
                lambda now, c=controller: float(c.serial_depth()),
            )
            # The three ratio probes share one telemetry_ratios() call
            # per sweep (updaters run before probes), not one each.
            pipe.add_updater(
                lambda now, n=name, c=controller: self._ratios.__setitem__(
                    n, c.query_engine.telemetry_ratios()
                )
            )
            for ratio in ("hit_rate", "negative_hit_rate", "coalesce_rate"):
                pipe.probe(
                    f"{name}.{ratio}",
                    lambda now, n=name, key=ratio: self._ratios[n][key],
                )
            # Push-plane probes: resident-hit share of all lookups,
            # standing subscription count, and the delta arrival rate
            # (windowed over the engine's deltas_applied total).  All
            # three read one cached push_telemetry() call per sweep.
            pipe.add_updater(
                lambda now, n=name, c=controller: self._push.__setitem__(
                    n, c.query_engine.push_telemetry()
                )
            )
            pipe.probe(
                f"{name}.resident_ratio",
                lambda now, n=name: self._push[n]["resident_ratio"],
            )
            pipe.probe(
                f"{name}.subscriptions",
                lambda now, n=name: self._push[n]["subscriptions"],
            )
            delta_rate = self._rate(f"{name}.delta_rate")
            pipe.add_updater(
                lambda now, rc=delta_rate, n=name: rc.observe_total(
                    now, self._push[n]["deltas_applied"]
                )
            )
            pipe.probe(f"{name}.delta_rate", lambda now, rc=delta_rate: rc.rate(now))

        # --- heartbeat tracking (cluster only) ------------------------
        if self.cluster is not None:
            def _track_heartbeats(now: float, replicas=controllers) -> None:
                for shard, controller in replicas.items():
                    if not controller.halted:
                        self._last_seen[shard] = now

            pipe.add_updater(_track_heartbeats)
            for name in controllers:
                pipe.probe(
                    f"{name}.heartbeat_gap",
                    lambda now, shard=name: now - self._last_seen.get(shard, now),
                )

        # --- per-switch probes ----------------------------------------
        for name, switch in self.network.switches.items():
            pipe.probe(
                f"{name}.table_occupancy",
                lambda now, sw=switch: float(len(sw.flow_table)),
            )
            removed_rate = self._rate(f"{name}.flow_removed_rate")
            pipe.add_updater(
                lambda now, rc=removed_rate, sw=switch: rc.observe_total(
                    now, float(sw.flow_removed.value)
                )
            )
            pipe.probe(
                f"{name}.flow_removed_rate",
                lambda now, rc=removed_rate: rc.rate(now),
            )

        # --- cluster rollups ------------------------------------------
        # One rollup per sweep (SRMCA-style push-up aggregation): the
        # updater fetches the cluster's aggregate dict once, and the
        # cluster.* probes read from that cached sweep.  Single-
        # controller networks synthesise the same shape locally so the
        # detector wiring is identical either way.
        self._rollup: dict[str, float] = {}

        def _fetch_rollup(now: float) -> None:
            if self.cluster is not None:
                self._rollup = self.cluster.telemetry_rollup()
            else:
                hits = lookups = 0
                for controller in controllers.values():
                    engine = controller.query_engine
                    hits += engine.hits
                    lookups += engine.lookups()
                self._rollup = {
                    "punts": float(
                        sum(c.packet_ins.value for c in controllers.values())
                    ),
                    "pending": float(
                        sum(c.pending_depth() for c in controllers.values())
                    ),
                    "hit_ratio": hits / lookups if lookups else 0.0,
                }

        pipe.add_updater(_fetch_rollup)
        aggregate_punts = self._rate("cluster.punt_rate")
        pipe.add_updater(
            lambda now, rc=aggregate_punts: rc.observe_total(
                now, self._rollup.get("punts", 0.0)
            )
        )
        pipe.probe("cluster.punt_rate", lambda now, rc=aggregate_punts: rc.rate(now))
        pipe.probe("cluster.hit_ratio", lambda now: self._rollup.get("hit_ratio", 0.0))
        pipe.probe(
            "cluster.pending_depth", lambda now: self._rollup.get("pending", 0.0)
        )
        if self.cluster is not None:
            pipe.probe(
                "cluster.failovers", lambda now: self._rollup.get("failovers", 0.0)
            )

    def _wire_detectors(
        self, *, gap_multiple: float, spike_warmup: int, spike_min_rate: float
    ) -> None:
        # Worm signature: the cluster-wide punt rate spikes when a
        # scanner sprays never-seen flows.  This is the detector the
        # auto-quarantine responder hangs off.  The absolute floor keeps
        # near-idle scenarios (baseline ~0, variance ~0) from reading
        # every scripted burst as an outbreak.
        self.monitor.watch(
            SpikeDetector(
                "cluster.punt_rate",
                warmup=spike_warmup,
                min_streak=2,
                min_value=spike_min_rate,
            )
        )
        # Invalidation storm: the aggregate hit ratio collapses.
        self.monitor.watch(
            CollapseDetector("cluster.hit_ratio", warmup=spike_warmup)
        )
        # Daemon brownout: per-shard pending depth grows monotonically.
        for name in self._controllers():
            self.monitor.watch(
                GrowthDetector(f"{name}.pending_depth", warmup=spike_warmup)
            )
        # Shard loss: heartbeat gap exceeds its structural bound.
        if self.cluster is not None:
            max_gap = gap_multiple * self.interval
            for name in self._controllers():
                self.monitor.watch(
                    GapDetector(f"{name}.heartbeat_gap", max_gap=max_gap)
                )

    def _wire_quarantine(self, *, fanout_threshold: int, window: float) -> None:
        if self.cluster is not None:
            audit = _ClusterAuditView(self.cluster)
            quarantine = self.cluster.coordinator.quarantine_host
        else:
            controllers = list(self._controllers().values())
            if not controllers:
                return
            primary = controllers[0]
            audit = primary.audit
            quarantine = primary.quarantine_host
        self.responder = AutoQuarantineResponder(
            audit,
            quarantine,
            fanout_threshold=fanout_threshold,
            window=window,
        )
        self.router.respond("spike", self.responder)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        """Begin sampling on the network's simulator clock."""
        return self.pipeline.start(self.network.topology.sim, self.interval)

    def stop(self) -> None:
        """Stop sampling so the event queue can drain."""
        self.pipeline.stop()

    @property
    def running(self) -> bool:
        """Return whether the sampler is armed."""
        return self.pipeline.running

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def alerts(self, kind: Optional[str] = None):
        """Return raised alerts (optionally filtered by kind)."""
        return self.router.alerts(kind)

    def quarantine_alerts(self):
        """Return the quarantine alerts raised by the responder."""
        return self.router.alerts(KIND_QUARANTINE)

    @property
    def quarantined(self) -> frozenset[str]:
        """Return hosts quarantined by the auto-quarantine responder."""
        if self.responder is None:
            return frozenset()
        return self.responder.quarantined

    def series(self, name: str):
        """Return one of the pipeline's time series by name."""
        return self.pipeline.series(name)

    def stats(self) -> dict[str, object]:
        """Return the whole plane's counters for reports."""
        stats: dict[str, object] = {
            "interval": self.interval,
            "pipeline": self.pipeline.stats(),
            "monitor": self.monitor.stats(),
            "router": self.router.stats(),
        }
        if self.responder is not None:
            stats["quarantine"] = self.responder.stats()
        return stats
