"""Layer 2 of the telemetry plane: baselines and deviation detectors.

Raw series are useless without a notion of *normal*.  Each detector
owns an :class:`EwmaBaseline` — an exponentially weighted moving
average of a series' mean and variance, learned during a warmup
window — and compares fresh samples against it.  When a sample breaks
the baseline's envelope for long enough, the detector emits a typed
:class:`Deviation` naming what broke and how badly; the alert router
in :mod:`repro.telemetry.alerting` turns those into responder calls.

Four detector shapes cover the failure modes the paper's control plane
must notice on its own (ISSUE 8):

========================  ============================================
detector                  signature it encodes
========================  ============================================
:class:`SpikeDetector`    punt-rate spike — a scanning worm punts a
                          burst of never-seen flows to the controller
:class:`CollapseDetector` cache hit-ratio collapse — an invalidation
                          storm empties the decision cache
:class:`GrowthDetector`   pending-depth growth — daemon brownout; the
                          queue grows monotonically instead of
                          oscillating around its service point
:class:`GapDetector`      heartbeat gap — a shard stopped reporting;
                          the series itself is the evidence
========================  ============================================

Detectors deliberately stop learning while a series is deviating:
folding outbreak samples into the baseline would normalise the attack
("the punt rate is always this high now") and silence the alarm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

#: Detector kind tags (also used as Alert kinds by the router).
KIND_SPIKE = "spike"
KIND_COLLAPSE = "collapse"
KIND_GROWTH = "growth"
KIND_GAP = "gap"


@dataclass(frozen=True)
class Deviation:
    """One detector firing on one series at one instant."""

    time: float
    kind: str
    series: str
    value: float
    baseline: float
    #: How far past the trigger condition the sample is, normalised so
    #: 1.0 is "exactly at the threshold"; responders can rank on it.
    severity: float
    detail: str = ""

    def describe(self) -> str:
        """Return a one-line human-readable description."""
        return (
            f"[{self.time:.3f}] {self.kind} on {self.series}: "
            f"value={self.value:.4g} baseline={self.baseline:.4g} "
            f"severity={self.severity:.2f}"
            + (f" ({self.detail})" if self.detail else "")
        )


class EwmaBaseline:
    """EWMA mean/variance baseline over a warmup-gated stream.

    ``alpha`` weights fresh samples; the variance EWMA uses the same
    constant over squared residuals (the standard EWMA/EWMV pair).  The
    baseline refuses to judge anything until it has seen ``warmup``
    samples — detectors treat a cold baseline as "no opinion".
    """

    __slots__ = ("alpha", "warmup", "mean", "variance", "samples")

    def __init__(self, alpha: float = 0.2, warmup: int = 10) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"EWMA alpha must be in (0, 1] (got {alpha})")
        if warmup < 1:
            raise ValueError(f"EWMA warmup must be >= 1 (got {warmup})")
        self.alpha = alpha
        self.warmup = warmup
        self.mean = 0.0
        self.variance = 0.0
        self.samples = 0

    @property
    def ready(self) -> bool:
        """Return whether the baseline has finished warming up."""
        return self.samples >= self.warmup

    @property
    def stddev(self) -> float:
        """Return the EWMA standard deviation."""
        return math.sqrt(max(0.0, self.variance))

    def update(self, value: float) -> None:
        """Fold one sample into the baseline."""
        self.samples += 1
        if self.samples == 1:
            self.mean = value
            self.variance = 0.0
            return
        residual = value - self.mean
        self.mean += self.alpha * residual
        self.variance = (1 - self.alpha) * (self.variance + self.alpha * residual * residual)

    def __repr__(self) -> str:
        return (
            f"EwmaBaseline(mean={self.mean:.4g}, stddev={self.stddev:.4g}, "
            f"samples={self.samples}/{self.warmup})"
        )


class Detector:
    """Base class: one detector watches one series.

    Subclasses implement :meth:`_judge`, returning a ``(deviating,
    severity, detail)`` triple for the current sample.  The base class
    handles warmup gating, learn-only-while-normal, and the
    ``min_streak`` debounce (a single noisy sample is not an incident).
    """

    kind = "deviation"

    def __init__(
        self,
        series: str,
        *,
        alpha: float = 0.2,
        warmup: int = 10,
        min_streak: int = 2,
    ) -> None:
        if min_streak < 1:
            raise ValueError(f"detector on {series!r}: min_streak must be >= 1")
        self.series = series
        self.baseline = EwmaBaseline(alpha=alpha, warmup=warmup)
        self.min_streak = min_streak
        self._streak = 0
        self.deviations = 0

    def observe(self, now: float, value: float) -> Optional[Deviation]:
        """Feed one sample; return a :class:`Deviation` if one fires."""
        if not self.baseline.ready:
            self.baseline.update(value)
            return None
        deviating, severity, detail = self._judge(value)
        if not deviating:
            self._streak = 0
            self.baseline.update(value)
            return None
        # Deviating: hold the baseline steady so the anomaly cannot
        # teach itself into normality.
        self._streak += 1
        if self._streak < self.min_streak:
            return None
        self.deviations += 1
        return Deviation(
            time=now,
            kind=self.kind,
            series=self.series,
            value=value,
            baseline=self.baseline.mean,
            severity=severity,
            detail=detail,
        )

    def _judge(self, value: float) -> tuple[bool, float, str]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.series!r}, {self.baseline!r})"


class SpikeDetector(Detector):
    """Fires when a sample exceeds ``mean + sigmas * stddev`` (and a
    multiplicative floor, so a flat-zero baseline needs a real burst).

    The worm signature: controller punt rate jumps an order of
    magnitude when a scanner sprays never-seen destinations.
    """

    kind = KIND_SPIKE

    def __init__(
        self,
        series: str,
        *,
        sigmas: float = 4.0,
        min_ratio: float = 3.0,
        min_value: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(series, **kwargs)
        self.sigmas = sigmas
        self.min_ratio = min_ratio
        self.min_value = min_value

    def _judge(self, value: float) -> tuple[bool, float, str]:
        mean = self.baseline.mean
        threshold = max(
            mean + self.sigmas * self.baseline.stddev,
            mean * self.min_ratio,
            self.min_value,
        )
        if value <= threshold:
            return False, 0.0, ""
        severity = value / threshold
        return True, severity, f"threshold={threshold:.4g}"


class CollapseDetector(Detector):
    """Fires when a ratio-like series falls below a fraction of its
    baseline (and the baseline was high enough to mean anything).

    The invalidation-storm signature: cache hit ratio drops from ~0.9
    to ~0 when revocations empty the decision cache.
    """

    kind = KIND_COLLAPSE

    def __init__(
        self,
        series: str,
        *,
        fraction: float = 0.5,
        min_baseline: float = 0.2,
        **kwargs,
    ) -> None:
        if not 0 < fraction < 1:
            raise ValueError(f"collapse fraction must be in (0, 1) (got {fraction})")
        super().__init__(series, **kwargs)
        self.fraction = fraction
        self.min_baseline = min_baseline

    def _judge(self, value: float) -> tuple[bool, float, str]:
        mean = self.baseline.mean
        if mean < self.min_baseline:
            return False, 0.0, ""
        threshold = mean * self.fraction
        if value >= threshold:
            return False, 0.0, ""
        severity = threshold / value if value > 0 else float(self.min_streak + threshold)
        return True, severity, f"threshold={threshold:.4g}"


class GrowthDetector(Detector):
    """Fires on sustained monotonic growth above baseline.

    The brownout signature: a healthy pending queue oscillates around
    its service point; a browned-out daemon makes it climb every
    sample.  Requires ``min_streak`` *strictly increasing* samples all
    above ``mean + margin`` — so a busy-but-draining queue never fires.
    """

    kind = KIND_GROWTH

    def __init__(
        self,
        series: str,
        *,
        margin: float = 2.0,
        min_streak: int = 3,
        **kwargs,
    ) -> None:
        super().__init__(series, min_streak=min_streak, **kwargs)
        self.margin = margin
        self._previous: Optional[float] = None

    def _judge(self, value: float) -> tuple[bool, float, str]:
        previous = self._previous
        self._previous = value
        above = value > self.baseline.mean + self.margin
        rising = previous is None or value > previous
        if not (above and rising):
            return False, 0.0, ""
        reference = self.baseline.mean + self.margin
        severity = value / reference if reference > 0 else value
        return True, severity, f"previous={previous if previous is not None else 'n/a'}"


class GapDetector(Detector):
    """Fires when a time-since-last-heartbeat series exceeds a bound.

    The shard-loss signature: the probe reports ``now - last_seen`` for
    each shard; a live shard keeps it near the heartbeat interval, a
    halted one lets it grow without bound.  No baseline maths — the
    bound is structural (a multiple of the expected interval) — but the
    warmup/streak machinery still debounces startup and jitter.
    """

    kind = KIND_GAP

    def __init__(
        self,
        series: str,
        *,
        max_gap: float,
        warmup: int = 1,
        min_streak: int = 2,
        **kwargs,
    ) -> None:
        if max_gap <= 0:
            raise ValueError(f"gap detector on {series!r}: max_gap must be positive")
        super().__init__(series, warmup=warmup, min_streak=min_streak, **kwargs)
        self.max_gap = max_gap

    def _judge(self, value: float) -> tuple[bool, float, str]:
        if value <= self.max_gap:
            return False, 0.0, ""
        return True, value / self.max_gap, f"max_gap={self.max_gap:.4g}"


class DeviationMonitor:
    """Routes pipeline sweeps into detectors and deviations onward.

    Attach it to a pipeline with :meth:`attach`; every sweep it feeds
    each watched series' latest sample to its detectors and forwards
    any resulting deviations to the registered sinks (the alert
    router).  Multiple detectors may watch the same series.
    """

    def __init__(self) -> None:
        self._detectors: list[Detector] = []
        self._sinks: list[Callable[[Deviation], None]] = []
        self.inspected = 0

    def watch(self, detector: Detector) -> Detector:
        """Register a detector; returns it for chaining."""
        self._detectors.append(detector)
        return detector

    def on_deviation(self, sink: Callable[[Deviation], None]) -> None:
        """Register a sink called with every deviation."""
        self._sinks.append(sink)

    def detectors(self) -> list[Detector]:
        """Return the registered detectors (registration order)."""
        return list(self._detectors)

    def inspect(self, now: float, pipeline) -> list[Deviation]:
        """Run every detector against its series' latest sample."""
        self.inspected += 1
        fired: list[Deviation] = []
        for detector in self._detectors:
            series = pipeline.series(detector.series)
            if series is None:
                continue
            latest = series.last()
            if latest is None or latest[0] != now:
                continue  # no fresh sample this sweep
            deviation = detector.observe(now, latest[1])
            if deviation is not None:
                fired.append(deviation)
        for deviation in fired:
            for sink in self._sinks:
                sink(deviation)
        return fired

    def attach(self, pipeline) -> None:
        """Subscribe this monitor to a pipeline's sweeps."""
        pipeline.on_sample(lambda now, pipe: self.inspect(now, pipe))

    def stats(self) -> dict[str, object]:
        """Return monitor-level counters for reports."""
        return {
            "detectors": len(self._detectors),
            "inspections": self.inspected,
            "deviations": sum(d.deviations for d in self._detectors),
        }
