"""Layer 3 of the telemetry plane: alerts, routing, auto-quarantine.

Deviations are observations; alerts are decisions to act.  The
:class:`AlertRouter` turns deviations into typed :class:`Alert`
objects, debounces repeats per ``(kind, source)`` under a cooldown,
keeps an audit trail of everything raised, and dispatches each alert
to the responders registered for its kind.

The flagship responder is :class:`AutoQuarantineResponder` — the piece
that closes the loop the paper promises: when the punt-rate spike
alert fires, it attributes the burst by scanning the controller audit
log for fan-out (one source touching many distinct destinations in
the recent window — the scanning-worm shape) and drives the existing
compromise/revocation path for every culprit.  The workload never
calls ``mark_compromised``; the telemetry plane does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.telemetry.deviation import Deviation

#: Alert kind raised by the auto-quarantine responder for each host it
#: quarantines (distinct from the detector kinds that trigger it).
KIND_QUARANTINE = "quarantine"

Responder = Callable[["Alert", "AlertRouter"], None]


@dataclass(frozen=True)
class Alert:
    """A typed, actionable event raised by the telemetry plane."""

    time: float
    kind: str
    source: str
    severity: float
    message: str
    deviation: Optional[Deviation] = None

    def describe(self) -> str:
        """Return a one-line human-readable description."""
        return f"[{self.time:.3f}] ALERT {self.kind}/{self.source}: {self.message}"


class AlertRouter:
    """Routes alerts to responders with per-``(kind, source)`` cooldown.

    The cooldown is the router's flood control: a sustained outbreak
    makes the spike detector fire on every sweep, but responders only
    need to be re-invoked once per cooldown period — long enough to
    avoid re-running attribution on every tick, short enough that a
    spreading worm gets repeated attribution passes as more evidence
    accumulates in the audit log.
    """

    def __init__(self, *, cooldown: float = 0.25) -> None:
        if cooldown < 0:
            raise ValueError(f"alert cooldown must be >= 0 (got {cooldown})")
        self.cooldown = cooldown
        self._responders: dict[str, list[Responder]] = {}
        self._last: dict[tuple[str, str], float] = {}
        self._alerts: list[Alert] = []
        self.suppressed = 0

    def respond(self, kind: str, responder: Responder) -> None:
        """Register a responder for one alert kind."""
        self._responders.setdefault(kind, []).append(responder)

    def alerts(self, kind: Optional[str] = None) -> list[Alert]:
        """Return raised alerts (all, or filtered by kind), oldest first."""
        if kind is None:
            return list(self._alerts)
        return [a for a in self._alerts if a.kind == kind]

    def emit(self, alert: Alert) -> bool:
        """Raise an alert: dedup, record, dispatch.

        Returns ``True`` if the alert was raised, ``False`` if the
        cooldown suppressed it.  Responders may call :meth:`emit`
        themselves to raise derived alerts (quarantine alerts ride the
        same trail as the spikes that caused them).
        """
        key = (alert.kind, alert.source)
        last = self._last.get(key)
        if last is not None and alert.time - last < self.cooldown:
            self.suppressed += 1
            return False
        self._last[key] = alert.time
        self._alerts.append(alert)
        for responder in self._responders.get(alert.kind, ()):
            responder(alert, self)
        return True

    def on_deviation(self, deviation: Deviation) -> bool:
        """Turn a deviation into an alert (the monitor's sink)."""
        return self.emit(
            Alert(
                time=deviation.time,
                kind=deviation.kind,
                source=deviation.series,
                severity=deviation.severity,
                message=deviation.describe(),
                deviation=deviation,
            )
        )

    def attach(self, monitor) -> None:
        """Subscribe this router to a deviation monitor."""
        monitor.on_deviation(self.on_deviation)

    def stats(self) -> dict[str, object]:
        """Return router-level counters for reports."""
        by_kind: dict[str, int] = {}
        for alert in self._alerts:
            by_kind[alert.kind] = by_kind.get(alert.kind, 0) + 1
        return {
            "alerts": len(self._alerts),
            "suppressed": self.suppressed,
            "by_kind": by_kind,
        }


class AutoQuarantineResponder:
    """Attributes punt-rate spikes to hosts and quarantines them.

    Attribution uses the evidence the control plane already keeps: the
    audit log records every decision the controller made, so a
    scanning worm shows up as one ``src_ip`` touching many distinct
    ``dst_ip`` values in the recent window while legitimate clients
    talk to a handful of servers.  Every source whose fan-out reaches
    ``fanout_threshold`` is quarantined through the supplied callable
    (the cluster coordinator's quarantine path) and a
    :data:`KIND_QUARANTINE` alert is raised — exactly once per host,
    however many spike alerts re-trigger attribution.
    """

    def __init__(
        self,
        audit,
        quarantine: Callable[[str], object],
        *,
        window: float = 0.5,
        fanout_threshold: int = 8,
    ) -> None:
        if fanout_threshold < 2:
            raise ValueError(
                f"fanout threshold must be >= 2 (got {fanout_threshold}); "
                "a threshold of 1 would quarantine every host that sent a flow"
            )
        if window <= 0:
            raise ValueError(f"attribution window must be positive (got {window})")
        self.audit = audit
        self.quarantine = quarantine
        self.window = window
        self.fanout_threshold = fanout_threshold
        self._quarantined: set[str] = set()

    @property
    def quarantined(self) -> frozenset[str]:
        """Return the hosts this responder has quarantined."""
        return frozenset(self._quarantined)

    def attribute(self, now: float) -> list[str]:
        """Return sources whose recent audit fan-out crosses the threshold.

        Scans the audit log newest-first and stops at the window edge —
        the log is append-only in time order, so the scan cost is
        bounded by recent activity, not run length.  Cached decisions
        are skipped: a cache hit never punted to the controller, so it
        is not part of the punt burst being attributed.
        """
        cutoff = now - self.window
        fanout: dict[str, set[str]] = {}
        for record in reversed(self.audit.records()):
            if record.time < cutoff:
                break
            if record.cached:
                continue
            src = str(record.flow.src_ip)
            if src in self._quarantined:
                continue
            fanout.setdefault(src, set()).add(str(record.flow.dst_ip))
        return sorted(
            src for src, dsts in fanout.items() if len(dsts) >= self.fanout_threshold
        )

    def __call__(self, alert: Alert, router: AlertRouter) -> None:
        """Respond to a spike alert: attribute, quarantine, re-alert."""
        for src in self.attribute(alert.time):
            self._quarantined.add(src)
            self.quarantine(src)
            router.emit(
                Alert(
                    time=alert.time,
                    kind=KIND_QUARANTINE,
                    source=src,
                    severity=alert.severity,
                    message=(
                        f"auto-quarantined {src}: audit fan-out >= "
                        f"{self.fanout_threshold} distinct destinations in "
                        f"{self.window:.3g}s (triggered by {alert.kind} on "
                        f"{alert.source})"
                    ),
                    deviation=alert.deviation,
                )
            )

    def stats(self) -> dict[str, object]:
        """Return responder-level counters for reports."""
        return {
            "quarantined": sorted(self._quarantined),
            "fanout_threshold": self.fanout_threshold,
            "window": self.window,
        }
