"""The telemetry plane: streaming metrics, deviation detection, alerting.

ROADMAP open item 4 — the control plane watching itself.  Three layers
(the pipeline/deviation/alerting split):

* :mod:`repro.telemetry.pipeline` — :class:`TelemetryProbe` taps on the
  hot paths, sampled on virtual time into bounded :class:`TimeSeries`
  ring buffers by a :class:`MetricsPipeline`;
* :mod:`repro.telemetry.deviation` — EWMA baselines and typed
  detectors (spike / collapse / growth / gap) that turn series into
  :class:`Deviation` events;
* :mod:`repro.telemetry.alerting` — an :class:`AlertRouter` that
  debounces deviations into typed :class:`Alert` objects and drives
  responders, chiefly :class:`AutoQuarantineResponder`, which closes
  the paper's detect-and-react loop by quarantining scanning hosts
  through the cluster coordinator with no scripted help.

:class:`TelemetryPlane` (in :mod:`repro.telemetry.plane`) assembles all
three over an :class:`~repro.core.network.IdentPPNetwork`; use
``network.enable_telemetry()`` for the one-liner.
"""

from repro.telemetry.alerting import (
    KIND_QUARANTINE,
    Alert,
    AlertRouter,
    AutoQuarantineResponder,
)
from repro.telemetry.deviation import (
    KIND_COLLAPSE,
    KIND_GAP,
    KIND_GROWTH,
    KIND_SPIKE,
    CollapseDetector,
    Detector,
    Deviation,
    DeviationMonitor,
    EwmaBaseline,
    GapDetector,
    GrowthDetector,
    SpikeDetector,
)
from repro.telemetry.pipeline import (
    DEFAULT_CAPACITY,
    MetricsPipeline,
    TelemetryProbe,
    TimeSeries,
)
from repro.telemetry.plane import (
    DEFAULT_INTERVAL,
    DEFAULT_SPIKE_MIN_RATE,
    TelemetryPlane,
)

__all__ = [
    "Alert",
    "AlertRouter",
    "AutoQuarantineResponder",
    "CollapseDetector",
    "DEFAULT_CAPACITY",
    "DEFAULT_INTERVAL",
    "DEFAULT_SPIKE_MIN_RATE",
    "Detector",
    "Deviation",
    "DeviationMonitor",
    "EwmaBaseline",
    "GapDetector",
    "GrowthDetector",
    "KIND_COLLAPSE",
    "KIND_GAP",
    "KIND_GROWTH",
    "KIND_QUARANTINE",
    "KIND_SPIKE",
    "MetricsPipeline",
    "SpikeDetector",
    "TelemetryPlane",
    "TelemetryProbe",
    "TimeSeries",
]
