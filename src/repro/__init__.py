"""Reproduction of *Delegating Network Security with More Information* (ident++).

The package is organised bottom-up:

* substrates — :mod:`repro.netsim` (discrete-event network simulator),
  :mod:`repro.openflow` (OpenFlow 1.0 abstraction), :mod:`repro.hosts`
  (end-host model), :mod:`repro.crypto` (signature substrate);
* the protocol and policy language — :mod:`repro.identpp` (the ident++
  query/response protocol and daemon) and :mod:`repro.pf` (the PF+=2
  policy language);
* the contribution — :mod:`repro.core` (the ident++ controller,
  delegation, interception, audit) with :class:`repro.core.IdentPPNetwork`
  as the one-stop scenario builder;
* comparisons and experiments — :mod:`repro.baselines`,
  :mod:`repro.security`, :mod:`repro.workloads`, :mod:`repro.analysis`.

Quickstart::

    from repro import IdentPPNetwork, HostSpec

    net = IdentPPNetwork("demo")
    sw = net.add_switch("sw1")
    net.add_host(HostSpec(name="client", ip="192.168.0.10",
                          users={"alice": ("users",)}), switch=sw)
    net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=sw)
    net.set_policy({"00-policy.control": "block all\\npass all with eq(@src[name], http) keep state\\n"})
    print(net.send_flow("client", "http", "alice", "192.168.1.1", 80))
"""

from repro.core.controller import ControllerConfig, IdentPPController
from repro.core.network import FlowResult, HostSpec, IdentPPNetwork
from repro.core.policy_engine import PolicyEngine
from repro.identpp.flowspec import FlowSpec
from repro.identpp.keyvalue import KeyValueSection, ResponseDocument
from repro.pf.parser import parse_ruleset
from repro.pf.evaluator import PolicyEvaluator

__version__ = "1.0.0"

__all__ = [
    "ControllerConfig",
    "IdentPPController",
    "FlowResult",
    "HostSpec",
    "IdentPPNetwork",
    "PolicyEngine",
    "FlowSpec",
    "KeyValueSection",
    "ResponseDocument",
    "parse_ruleset",
    "PolicyEvaluator",
    "__version__",
]
