"""The OpenFlow switch datapath.

An :class:`OpenFlowSwitch` forwards packets according to its flow table
and punts table misses to its controller over a
:class:`~repro.openflow.channel.ControllerChannel` (§3.1).  It buffers
punted packets so the controller can later release them with a
``packet_out`` or an entry-installing ``flow_mod`` carrying the buffer
id — exactly the Figure 1 sequence.

Three knobs exist for the security and resilience experiments:

* ``fail_mode`` — what to do with a table miss when no controller is
  reachable (``"secure"`` drops, ``"open"`` floods).
* :meth:`mark_compromised` — a compromised switch "lets any traffic pass
  through without regulation" (§5.2); it bypasses the flow table and
  floods every packet.
* :meth:`fail` — a failed (powered-off) switch drops every packet and
  ignores every control message, which is what lets the fabric bench
  prove a mid-path failure fails *closed*: traffic reaching the dead
  hop goes nowhere, and the surviving hops' entries are torn down by
  the controller's path unwinder when their idle timeouts fire.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.exceptions import OpenFlowError, PortError
from repro.netsim.nodes import Node, Port
from repro.netsim.packet import Packet
from repro.netsim.statistics import Counter
from repro.netsim.trace import PacketTrace
from repro.openflow.actions import (
    Action,
    ControllerAction,
    DropAction,
    FloodAction,
    OutputAction,
)
from repro.openflow.channel import ControllerChannel
from repro.openflow.flow_table import FlowEntry, FlowTable
from repro.openflow.messages import (
    ControlMessage,
    FlowMod,
    FlowRemoved,
    PacketIn,
    PacketOut,
    PortStatsReply,
    StatsRequest,
)


class OpenFlowSwitch(Node):
    """A flow-table-driven switch."""

    def __init__(
        self,
        name: str,
        *,
        table_capacity: Optional[int] = None,
        fail_mode: str = "secure",
        trace: Optional[PacketTrace] = None,
    ) -> None:
        super().__init__(name)
        if fail_mode not in ("secure", "open"):
            raise OpenFlowError(f"unknown fail mode: {fail_mode!r}")
        self.flow_table = FlowTable(name=f"{name}.flow-table", capacity=table_capacity)
        # Capacity evictions notify the controller like timeouts do, so
        # path-wide installs can be unwound when one hop is squeezed out.
        self.flow_table.evict_listener = (
            lambda entry: self._notify_removed(entry, reason="eviction")
        )
        self.channel: Optional[ControllerChannel] = None
        #: Every control channel this switch holds, by controller name.
        #: Single-controller deployments have exactly one entry (also
        #: exposed as :attr:`channel`); a sharded cluster registers one
        #: channel per replica and installs a :attr:`shard_router`.
        self.channels: dict[str, ControllerChannel] = {}
        # Maps a punted packet to the preference-ordered controller names
        # that should decide it (owner shard first, then successors).
        self.shard_router: Optional[Callable[[Packet], Iterable[str]]] = None
        self.fail_mode = fail_mode
        self.trace = trace
        self.compromised = False
        self.failed = False
        self._buffered: dict[int, tuple[Packet, int]] = {}
        self.punts = Counter(f"{name}.punts")
        self.drops = Counter(f"{name}.drops")
        self.forwarded = Counter(f"{name}.forwarded")
        # Entries removed from the flow table (timeouts, evictions,
        # sweeps) — the telemetry plane turns this into a churn rate.
        self.flow_removed = Counter(f"{name}.flow_removed")

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def set_channel(self, channel: ControllerChannel) -> None:
        """Attach a control channel (done by ``Controller.register_switch``).

        The most recently attached channel doubles as the default
        :attr:`channel`; every attached channel stays reachable through
        :attr:`channels` for shard routing.
        """
        self.channel = channel
        self.channels[channel.controller.name] = channel

    def set_shard_router(self, router: Optional[Callable[[Packet], Iterable[str]]]) -> None:
        """Install (or clear) the punt router used with multiple channels.

        ``router(packet)`` returns controller names in preference order;
        the switch punts to the first one whose channel is connected, so
        a dropped channel re-homes new punts to the successor on the
        spot.
        """
        self.shard_router = router

    def punt_channel(self, packet: Packet) -> Optional[ControllerChannel]:
        """Return the connected control channel that should decide ``packet``."""
        if self.shard_router is not None and self.channels:
            for name in self.shard_router(packet):
                channel = self.channels.get(name)
                if channel is not None and channel.connected:
                    return channel
            return None
        if self.channel is not None and self.channel.connected:
            return self.channel
        return None

    def handle_message(self, message: ControlMessage) -> None:
        """Process a controller → switch message."""
        if self.failed:
            # A dead switch's control socket is gone; messages addressed
            # to it (flow mods, path unwind deletes) simply vanish.
            return
        if isinstance(message, FlowMod):
            self._handle_flow_mod(message)
        elif isinstance(message, PacketOut):
            self._handle_packet_out(message)
        elif isinstance(message, StatsRequest):
            self._handle_stats_request(message)
        else:
            raise OpenFlowError(f"switch {self.name} cannot handle {type(message).__name__}")

    def _handle_flow_mod(self, message: FlowMod) -> None:
        if message.is_delete():
            from repro.openflow.messages import FlowModCommand

            strict = message.command == FlowModCommand.DELETE_STRICT
            # A cookie on a delete scopes it to that decision's entries
            # (OpenFlow 1.1+ cookie filter) — how the controller unwinds
            # one flow's path without touching co-resident entries.
            self.flow_table.remove(
                message.match, strict=strict,
                cookie=message.cookie if message.cookie else None,
            )
            return
        entry = FlowEntry(
            match=message.match,
            actions=tuple(message.actions),
            priority=message.priority,
            idle_timeout=message.idle_timeout,
            hard_timeout=message.hard_timeout,
            cookie=message.cookie,
        )
        self.flow_table.install(entry, now=self.now)
        if message.buffer_id is not None:
            self._release_buffer(message.buffer_id, entry.actions)

    def _handle_packet_out(self, message: PacketOut) -> None:
        if message.buffer_id is not None:
            self._release_buffer(message.buffer_id, tuple(message.actions))
            return
        if message.packet is None:
            raise OpenFlowError("PacketOut carries neither a buffer id nor a packet")
        self._apply_actions(message.packet, tuple(message.actions), message.in_port)

    def _handle_stats_request(self, message: StatsRequest) -> None:
        stats: dict[int, dict[str, float]] = {}
        for port in self.ports():
            if message.port is not None and port.number != message.port:
                continue
            stats[port.number] = {
                "tx_packets": float(port.tx_packets.value),
                "rx_packets": float(port.rx_packets.value),
                "tx_bytes": float(port.tx_bytes.value),
                "rx_bytes": float(port.rx_bytes.value),
            }
        channel = None
        if message.requester is not None:
            channel = self.channels.get(message.requester)
        if channel is None:
            channel = self.channel
        if channel is not None:
            channel.send_to_controller(PortStatsReply(switch=self, stats=stats))

    def _release_buffer(self, buffer_id: int, actions: tuple[Action, ...]) -> None:
        buffered = self._buffered.pop(buffer_id, None)
        if buffered is None:
            return
        packet, in_port = buffered
        self._apply_actions(packet, actions, in_port)

    def buffered_count(self) -> int:
        """Return how many punted packets are still waiting for a controller verdict."""
        return len(self._buffered)

    def sweep_expired(self, now: float) -> int:
        """Expire timed-out flow entries and notify the controller.

        A switch normally ages its table as a side effect of traffic
        (:meth:`receive`); an idle switch never does, which is what lets
        dead entries pin memory forever.  The controller's lifecycle
        service calls this periodically so reclamation does not depend on
        packets arriving.  Returns how many entries were removed.
        """
        if self.failed:
            # A dead switch sweeps nothing and notifies nobody.
            return 0
        expired = self.flow_table.expire(now)
        for entry in expired:
            self._notify_removed(entry)
        return len(expired)

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------

    def receive(self, packet: Packet, in_port: Port) -> None:
        """Forward, drop or punt an arriving packet."""
        super().receive(packet, in_port)
        if self.failed:
            # A powered-off switch forwards nothing: traffic sent into a
            # mid-path failure dies here (fail closed), never reaching
            # downstream hops whose entries may still be draining.
            self._record("drop", packet, note="switch failed")
            self.drops.increment()
            return
        if self.compromised:
            # §5.2: a compromised switch passes traffic without regulation.
            self._record("forward", packet, note="compromised switch floods")
            self.forwarded.increment()
            self.flood(packet, exclude=in_port)
            return
        expired = self.flow_table.expire(self.now)
        for entry in expired:
            self._notify_removed(entry)
        entry = self.flow_table.lookup(packet, in_port.number, now=self.now)
        if entry is not None:
            self._record("hit", packet, note=entry.cookie)
            self._apply_actions(packet, entry.actions, in_port.number)
            return
        self._handle_table_miss(packet, in_port)

    def _handle_table_miss(self, packet: Packet, in_port: Port) -> None:
        channel = self.punt_channel(packet)
        if channel is not None:
            message = PacketIn(switch=self, packet=packet, in_port=in_port.number)
            self._buffered[message.buffer_id] = (packet, in_port.number)
            self.punts.increment()
            self._record("punt", packet, note=channel.controller.name)
            channel.send_to_controller(message)
            return
        if self.fail_mode == "open":
            self._record("forward", packet, note="fail-open flood")
            self.forwarded.increment()
            self.flood(packet, exclude=in_port)
        else:
            self._record("drop", packet, note="fail-secure, no controller")
            self.drops.increment()

    def _apply_actions(
        self,
        packet: Packet,
        actions: Sequence[Action],
        in_port: Optional[int],
    ) -> None:
        if not actions or all(isinstance(action, DropAction) for action in actions):
            self.drops.increment()
            self._record("drop", packet)
            return
        exclude = None
        if in_port is not None:
            try:
                exclude = self.port(in_port)
            except PortError:
                # An unknown ingress port (entry installed before a
                # rewire) just means the flood cannot exclude it.
                exclude = None
        for action in actions:
            if isinstance(action, DropAction):
                continue
            if isinstance(action, OutputAction):
                self.forwarded.increment()
                self._record("forward", packet, note=f"port {action.port}")
                self.send(packet, action.port)
            elif isinstance(action, FloodAction):
                self.forwarded.increment()
                self._record("forward", packet, note="flood")
                self.flood(packet, exclude=exclude)
            elif isinstance(action, ControllerAction):
                channel = self.punt_channel(packet)
                if channel is not None:
                    message = PacketIn(
                        switch=self, packet=packet, in_port=in_port if in_port is not None else 0,
                        reason="action",
                    )
                    self._buffered[message.buffer_id] = (packet, in_port if in_port is not None else 0)
                    self.punts.increment()
                    channel.send_to_controller(message)
            else:
                raise OpenFlowError(f"switch {self.name} cannot apply {type(action).__name__}")

    def _notify_removed(self, entry: FlowEntry, *, reason: str = "idle_timeout") -> None:
        self.flow_removed.increment()
        if self.failed:
            return
        channel = self._owner_channel(entry.cookie)
        if channel is not None:
            channel.send_to_controller(
                FlowRemoved(
                    switch=self,
                    match=entry.match,
                    cookie=entry.cookie,
                    reason=reason,
                    packet_count=entry.packet_count,
                    byte_count=entry.byte_count,
                )
            )

    def _owner_channel(self, cookie: str) -> Optional[ControllerChannel]:
        """Return the channel of the controller that installed ``cookie``.

        Decision cookies are ``<controller name>:decision-N``; with
        multiple channels the removal notice goes back to the installer
        when its channel is up, else to any connected channel (a
        successor can at least observe the expiry).
        """
        if cookie and len(self.channels) > 1:
            owner = self.channels.get(cookie.split(":", 1)[0])
            if owner is not None and owner.connected:
                return owner
            for name in sorted(self.channels):
                if self.channels[name].connected:
                    return self.channels[name]
            return None
        if self.channel is not None and self.channel.connected:
            return self.channel
        return None

    # ------------------------------------------------------------------
    # Security harness hooks
    # ------------------------------------------------------------------

    def mark_compromised(self) -> None:
        """Put the switch in the §5.2 compromised state (unregulated forwarding)."""
        self.compromised = True

    def restore(self) -> None:
        """Undo :meth:`mark_compromised`."""
        self.compromised = False

    def fail(self) -> None:
        """Power the switch off: every packet is dropped, every control
        message is ignored, and no expiry is ever notified.

        Unlike :meth:`mark_compromised` (which forwards *everything*),
        a failed switch forwards *nothing* — the mid-path failure mode
        the fabric bench gates on.
        """
        self.failed = True

    def recover(self) -> None:
        """Power a failed switch back on.

        The flow table comes back as it was at failure time; entries
        whose timeouts elapsed meanwhile expire on the next packet or
        sweep, and the resulting ``FlowRemoved`` messages let the
        controller unwind any path state still referencing this hop.
        """
        self.failed = False

    def _record(self, event: str, packet: Packet, note: str = "") -> None:
        if self.trace is not None:
            self.trace.record(self.now, self.name, event, packet, note)

    def __repr__(self) -> str:
        return f"OpenFlowSwitch({self.name!r}, entries={len(self.flow_table)})"
