"""OpenFlow actions.

The paper (§3.1) lists the actions the reproduction needs: "dropping the
packet, forwarding it on a particular port or number of ports, or
sending the packet to the OpenFlow controller".  Each is a small class
so flow entries can carry lists of actions and the switch can apply them
uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


class Action:
    """Base class for flow-entry actions (marker type)."""

    def describe(self) -> str:
        """Return a short human-readable description (used in audit logs)."""
        return type(self).__name__


@dataclass(frozen=True)
class OutputAction(Action):
    """Forward the packet out of a specific switch port."""

    port: int

    def describe(self) -> str:
        return f"output:{self.port}"


@dataclass(frozen=True)
class FloodAction(Action):
    """Forward the packet out of every port except the ingress port."""

    def describe(self) -> str:
        return "flood"


@dataclass(frozen=True)
class DropAction(Action):
    """Drop the packet.

    An empty action list also drops in real OpenFlow; the explicit action
    keeps audit logs and tests unambiguous about *deliberate* denies.
    """

    def describe(self) -> str:
        return "drop"


@dataclass(frozen=True)
class ControllerAction(Action):
    """Punt the packet to the controller over the control channel."""

    def describe(self) -> str:
        return "controller"


def describe_actions(actions: Sequence[Action]) -> str:
    """Return a compact description of an action list (``"output:3"``, ``"drop"``...)."""
    if not actions:
        return "drop(implicit)"
    return ",".join(action.describe() for action in actions)


def is_drop(actions: Sequence[Action]) -> bool:
    """Return ``True`` if the action list results in the packet being dropped."""
    if not actions:
        return True
    return all(isinstance(action, DropAction) for action in actions)
