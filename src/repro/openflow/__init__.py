"""OpenFlow 1.0 substrate.

The paper assumes "firewalls ... implemented using an Ethane network or
an OpenFlow network" (§2) and describes its design on OpenFlow (§3.1):
switches keep a flow table keyed by the 10-tuple, unmatched packets are
punted to a controller, and the controller caches its decision by
installing flow entries (possibly preemptively along the whole path).

This package models exactly that abstraction:

* :mod:`repro.openflow.match` — the 10-tuple match with wildcards,
* :mod:`repro.openflow.actions` — forward / flood / drop / send-to-controller,
* :mod:`repro.openflow.flow_table` — priority flow tables with idle and
  hard timeouts and per-entry counters,
* :mod:`repro.openflow.messages` — ``packet_in`` / ``flow_mod`` /
  ``packet_out`` / ``flow_removed`` control messages,
* :mod:`repro.openflow.channel` — the switch↔controller control channel
  with configurable latency,
* :mod:`repro.openflow.switch` — the datapath node,
* :mod:`repro.openflow.controller_base` — a base class controllers
  (ident++, Ethane baseline, learning switch) build on.
"""

from repro.openflow.actions import (
    Action,
    ControllerAction,
    DropAction,
    FloodAction,
    OutputAction,
)
from repro.openflow.channel import ControllerChannel
from repro.openflow.controller_base import Controller, LearningSwitchController
from repro.openflow.flow_table import FlowEntry, FlowTable
from repro.openflow.match import Match
from repro.openflow.messages import (
    FlowMod,
    FlowRemoved,
    PacketIn,
    PacketOut,
    PortStatsReply,
    StatsRequest,
)
from repro.openflow.switch import OpenFlowSwitch

__all__ = [
    "Action",
    "ControllerAction",
    "DropAction",
    "FloodAction",
    "OutputAction",
    "ControllerChannel",
    "Controller",
    "LearningSwitchController",
    "FlowEntry",
    "FlowTable",
    "Match",
    "FlowMod",
    "FlowRemoved",
    "PacketIn",
    "PacketOut",
    "PortStatsReply",
    "StatsRequest",
    "OpenFlowSwitch",
]
