"""Priority flow tables with timeouts and counters.

"The flow table in an OpenFlow switch maps from the 10-tuple definition
of a flow to an action to be taken on packets belonging to that flow"
(§3.1).  Decisions made by the controller are *cached* here, so the flow
table is also the ident++ decision cache whose effectiveness experiment
E11 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence

from repro.exceptions import FlowTableError
from repro.netsim.packet import Packet
from repro.openflow.actions import Action
from repro.openflow.match import Match

#: Default priority for controller-installed entries.
DEFAULT_PRIORITY = 100


@dataclass
class FlowEntry:
    """One cached forwarding/drop decision.

    Attributes:
        match: The 10-tuple match (possibly wildcarded).
        actions: Actions applied to matching packets; empty means drop.
        priority: Higher priorities win; ties break on match specificity
            then insertion order.
        idle_timeout: Seconds of inactivity after which the entry expires
            (0 disables idle expiry).
        hard_timeout: Seconds after installation at which the entry
            expires unconditionally (0 disables hard expiry).
        cookie: Opaque controller-chosen identifier, used by the ident++
            controller to tie entries back to policy decisions for audit
            and revocation.
    """

    match: Match
    actions: tuple[Action, ...] = ()
    priority: int = DEFAULT_PRIORITY
    idle_timeout: float = 0.0
    hard_timeout: float = 0.0
    cookie: str = ""
    installed_at: float = 0.0
    last_used_at: float = 0.0
    packet_count: int = 0
    byte_count: int = 0
    sequence: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.actions, tuple):
            self.actions = tuple(self.actions)
        if self.idle_timeout < 0 or self.hard_timeout < 0:
            raise FlowTableError("timeouts must be non-negative")

    def record_use(self, packet: Packet, now: float) -> None:
        """Update counters when a packet hits this entry."""
        self.packet_count += 1
        self.byte_count += packet.wire_size()
        self.last_used_at = now

    def is_expired(self, now: float) -> bool:
        """Return ``True`` if either timeout has elapsed."""
        if self.hard_timeout and now - self.installed_at >= self.hard_timeout:
            return True
        if self.idle_timeout and now - self.last_used_at >= self.idle_timeout:
            return True
        return False

    def __str__(self) -> str:
        from repro.openflow.actions import describe_actions

        return (
            f"FlowEntry(prio={self.priority}, {self.match}, "
            f"actions=[{describe_actions(self.actions)}], pkts={self.packet_count})"
        )


class FlowTable:
    """The flow table of one switch."""

    #: Exact-match cache entries kept before wholesale clearing; bounds the
    #: memory a long simulation with high flow churn can pin.
    EXACT_CACHE_LIMIT = 8192

    def __init__(self, name: str = "flow-table", capacity: Optional[int] = None) -> None:
        self.name = name
        self.capacity = capacity
        #: Called with each entry evicted under capacity pressure.  The
        #: owning switch wires this to its FlowRemoved notifier so the
        #: controller's path unwinder hears about evictions exactly like
        #: timeouts (OpenFlow's OFPFF_SEND_FLOW_REM semantics).
        self.evict_listener: Optional[Callable[[FlowEntry], None]] = None
        self._entries: list[FlowEntry] = []
        self._sequence = 0
        # header-tuple -> best entry from a previous full scan; valid until
        # the table is modified (any install/remove/evict/expiry clears it).
        self._exact_cache: dict[tuple, FlowEntry] = {}
        # (match, priority) -> entry, so installs replace duplicates in
        # O(1) instead of scanning the table (install() keeps the pair
        # unique, so the index can never alias two live entries).
        self._same_index: dict[tuple[Match, int], FlowEntry] = {}
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.exact_hits = 0
        self.evictions = 0
        self.expirations = 0

    # ------------------------------------------------------------------
    # Modification
    # ------------------------------------------------------------------

    def install(self, entry: FlowEntry, now: float = 0.0, *, replace: bool = True) -> FlowEntry:
        """Install a flow entry.

        When ``replace`` is true an existing entry with an identical match
        and priority is overwritten (OpenFlow ``OFPFC_MODIFY`` semantics);
        otherwise a duplicate raises :class:`FlowTableError`.

        If the table has a capacity limit and is full, the least recently
        used entry is evicted.
        """
        existing = self._find_same(entry.match, entry.priority)
        if existing is not None:
            if not replace:
                raise FlowTableError(f"duplicate flow entry: {entry.match}")
            self._entries.remove(existing)
        if self.capacity is not None and len(self._entries) >= self.capacity:
            self._evict_lru()
        self._exact_cache.clear()
        self._sequence += 1
        entry.sequence = self._sequence
        entry.installed_at = now
        entry.last_used_at = now
        self._entries.append(entry)
        self._same_index[(entry.match, entry.priority)] = entry
        return entry

    def remove(
        self, match: Match, *, strict: bool = False, cookie: Optional[str] = None
    ) -> int:
        """Remove entries matching ``match``.

        With ``strict`` only an entry with an identical match is removed;
        otherwise every entry whose match is covered by ``match`` is
        removed (OpenFlow delete semantics).  A non-``None`` ``cookie``
        additionally restricts the delete to entries carrying it (the
        OpenFlow 1.1+ cookie filter the path unwinder uses).  Returns
        the number removed.
        """
        if strict:
            victims = [e for e in self._entries if e.match == match]
        else:
            victims = [e for e in self._entries if match.covers(e.match)]
        if cookie is not None:
            victims = [e for e in victims if e.cookie == cookie]
        if victims:
            self._discard(victims)
        return len(victims)

    def remove_by_cookie(self, cookie: str) -> int:
        """Remove every entry with the given cookie (used for policy revocation)."""
        victims = [e for e in self._entries if e.cookie == cookie]
        if victims:
            self._discard(victims)
        return len(victims)

    def clear(self) -> None:
        """Remove all entries."""
        self._entries.clear()
        self._exact_cache.clear()
        self._same_index.clear()

    def _find_same(self, match: Match, priority: int) -> Optional[FlowEntry]:
        return self._same_index.get((match, priority))

    def _discard(self, victims: Sequence[FlowEntry]) -> None:
        """Drop ``victims`` from the table, keeping both indexes in sync."""
        gone = {id(e) for e in victims}
        self._entries = [e for e in self._entries if id(e) not in gone]
        for entry in victims:
            key = (entry.match, entry.priority)
            if self._same_index.get(key) is entry:
                del self._same_index[key]
        self._exact_cache.clear()

    def _evict_lru(self) -> None:
        if not self._entries:
            return
        victim = min(self._entries, key=lambda e: (e.last_used_at, e.sequence))
        self._discard([victim])
        self.evictions += 1
        if self.evict_listener is not None:
            self.evict_listener(victim)

    # ------------------------------------------------------------------
    # Lookup and expiry
    # ------------------------------------------------------------------

    def lookup(self, packet: Packet, in_port: Optional[int] = None, now: float = 0.0) -> Optional[FlowEntry]:
        """Return the best matching entry for a packet, updating its counters.

        "Best" is highest priority, then most specific match, then oldest
        installation, which mirrors hardware behaviour closely enough for
        the experiments.  Returns ``None`` on a table miss.

        An exact-match hash cache short-circuits the priority scan for
        repeat packets of the same flow: the winning entry of a previous
        scan is keyed on the packet's full header tuple and stays valid
        until the table is modified (every mutation clears the cache), so
        the fast path can never disagree with the scan.
        """
        self.lookups += 1
        packet_key = (
            in_port,
            packet.eth_src,
            packet.eth_dst,
            packet.eth_type,
            packet.vlan_id,
            packet.ip_src,
            packet.ip_dst,
            packet.ip_proto,
            packet.tp_src,
            packet.tp_dst,
        )
        cached = self._exact_cache.get(packet_key)
        if cached is not None:
            if not cached.is_expired(now):
                self.exact_hits += 1
                self.hits += 1
                cached.record_use(packet, now)
                return cached
            # The cached winner expired; rescan (a lower-ranked entry may
            # now be the best match).
            del self._exact_cache[packet_key]
        best: Optional[FlowEntry] = None
        best_key = None
        for entry in self._entries:
            if entry.is_expired(now):
                continue
            if not entry.match.matches(packet, in_port):
                continue
            key = (entry.priority, entry.match.specificity(), -entry.sequence)
            if best_key is None or key > best_key:
                best = entry
                best_key = key
        if best is None:
            self.misses += 1
            return None
        self.hits += 1
        best.record_use(packet, now)
        if len(self._exact_cache) >= self.EXACT_CACHE_LIMIT:
            self._exact_cache.clear()
        self._exact_cache[packet_key] = best
        return best

    def expire(self, now: float) -> list[FlowEntry]:
        """Remove and return entries whose timeouts have elapsed."""
        expired = [e for e in self._entries if e.is_expired(now)]
        if expired:
            self._discard(expired)
            self.expirations += len(expired)
        return expired

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def entries(self) -> Iterator[FlowEntry]:
        """Iterate over entries in priority (then recency) order."""
        return iter(
            sorted(
                self._entries,
                key=lambda e: (-e.priority, -e.match.specificity(), e.sequence),
            )
        )

    def find(self, predicate: Callable[[FlowEntry], bool]) -> list[FlowEntry]:
        """Return entries satisfying ``predicate``."""
        return [entry for entry in self._entries if predicate(entry)]

    def expirable_count(self) -> int:
        """Return how many entries carry a timeout a future sweep could reclaim."""
        return sum(1 for e in self._entries if e.idle_timeout or e.hard_timeout)

    def next_deadline(self) -> Optional[float]:
        """Return the earliest moment any entry can expire (``None`` when none can).

        Idle deadlines are computed from the current ``last_used_at``, so
        traffic that keeps refreshing an entry makes this a lower bound —
        exactly what a sweep scheduler needs (waking early is a no-op).
        """
        earliest: Optional[float] = None
        for entry in self._entries:
            candidates = []
            if entry.hard_timeout:
                candidates.append(entry.installed_at + entry.hard_timeout)
            if entry.idle_timeout:
                candidates.append(entry.last_used_at + entry.idle_timeout)
            if not candidates:
                continue
            due = min(candidates)
            if earliest is None or due < earliest:
                earliest = due
        return earliest

    def hit_rate(self) -> float:
        """Return hits / lookups (0.0 when no lookups happened)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def stats(self) -> dict[str, float]:
        """Return a summary dictionary used by benchmark E11."""
        return {
            "entries": float(len(self._entries)),
            "lookups": float(self.lookups),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hit_rate(),
            "exact_hits": float(self.exact_hits),
            "evictions": float(self.evictions),
            "expirations": float(self.expirations),
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, match: Match) -> bool:
        return any(entry.match == match for entry in self._entries)


def make_entry(
    match: Match,
    actions: Sequence[Action],
    *,
    priority: int = DEFAULT_PRIORITY,
    idle_timeout: float = 0.0,
    hard_timeout: float = 0.0,
    cookie: str = "",
) -> FlowEntry:
    """Convenience constructor mirroring the FlowMod message fields."""
    return FlowEntry(
        match=match,
        actions=tuple(actions),
        priority=priority,
        idle_timeout=idle_timeout,
        hard_timeout=hard_timeout,
        cookie=cookie,
    )
