"""Controller base class and a learning-switch reference controller.

The ident++ controller (:mod:`repro.core.controller`), the Ethane-style
baseline and the plain learning switch all share the same mechanics:
they own control channels to a set of switches, receive ``packet_in``
messages and answer with ``flow_mod`` / ``packet_out``.  That shared
machinery lives in :class:`Controller`.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Sequence

from repro.exceptions import ChannelError, OpenFlowError
from repro.netsim.addresses import MACAddress
from repro.netsim.events import Simulator
from repro.netsim.statistics import Counter, StatsRegistry
from repro.openflow.actions import Action, FloodAction, OutputAction
from repro.openflow.channel import DEFAULT_CONTROL_LATENCY, ControllerChannel
from repro.openflow.flow_table import DEFAULT_PRIORITY
from repro.openflow.match import Match
from repro.openflow.messages import (
    ControlMessage,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    PacketIn,
    PacketOut,
    PortStatsReply,
)
from repro.openflow.switch import OpenFlowSwitch


class Controller:
    """Base class for OpenFlow controllers.

    Subclasses implement :meth:`on_packet_in`; everything else (switch
    registration, message dispatch, flow-mod helpers, statistics) is
    provided here.
    """

    def __init__(self, name: str = "controller") -> None:
        self.name = name
        self.sim: Optional[Simulator] = None
        self.channels: dict[str, ControllerChannel] = {}
        self.stats = StatsRegistry()
        self.packet_ins = Counter(f"{name}.packet_ins")
        self.flow_mods = Counter(f"{name}.flow_mods")
        self.packet_outs = Counter(f"{name}.packet_outs")
        self.compromised = False
        self.halted = False
        # Messages that arrived while halted (the dead process's socket
        # backlog); a failover monitor drains them to a successor.
        self._halted_inbox: list[ControlMessage] = []
        # Opt-in non-blocking inbox: with this set (and a simulator
        # attached), incoming messages are queued and drained by a
        # same-instant scheduled event instead of being handled inside
        # the channel's delivery call — a slow handler never blocks the
        # delivery path, and handlers observe a consistent "all arrivals
        # first, then dispatch" order within an instant.
        self.nonblocking_inbox = False
        self._inbox: deque[ControlMessage] = deque()
        self._drain_scheduled = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, sim: Simulator) -> None:
        """Bind the controller to a simulator clock."""
        self.sim = sim

    @property
    def now(self) -> float:
        """Return the current simulated time (0.0 when detached)."""
        return self.sim.now if self.sim is not None else 0.0

    def register_switch(
        self,
        switch: OpenFlowSwitch,
        *,
        latency: float = DEFAULT_CONTROL_LATENCY,
    ) -> ControllerChannel:
        """Create the control channel to ``switch`` and remember it."""
        if switch.name in self.channels:
            raise ChannelError(f"switch {switch.name} already registered with {self.name}")
        if self.sim is None and switch.sim is not None:
            self.sim = switch.sim
        channel = ControllerChannel(switch, self, latency=latency)
        switch.set_channel(channel)
        self.channels[switch.name] = channel
        return channel

    def switches(self) -> list[OpenFlowSwitch]:
        """Return the registered switches in name order."""
        return [self.channels[name].switch for name in sorted(self.channels)]

    def channel_for(self, switch: OpenFlowSwitch | str) -> ControllerChannel:
        """Return the control channel for a switch (by object or name)."""
        name = switch if isinstance(switch, str) else switch.name
        try:
            return self.channels[name]
        except KeyError as exc:
            raise ChannelError(f"switch {name} is not registered with controller {self.name}") from exc

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    def handle_message(self, message: ControlMessage) -> None:
        """Dispatch a switch → controller message to the right handler."""
        if self.halted:
            # A crashed controller cannot process anything; keep the
            # message so a failover can hand it to a live replica.
            self._halted_inbox.append(message)
            return
        if self.nonblocking_inbox and self.sim is not None:
            self._inbox.append(message)
            if not self._drain_scheduled:
                self._drain_scheduled = True
                self.sim.schedule(0.0, self._drain_inbox, label=f"{self.name}:inbox")
            return
        self._dispatch(message)

    def _drain_inbox(self) -> None:
        """Drain the non-blocking inbox (one scheduled event per burst)."""
        self._drain_scheduled = False
        while self._inbox:
            message = self._inbox.popleft()
            if self.halted:
                # The process died between arrival and dispatch; the
                # backlog belongs to the failover handoff.
                self._halted_inbox.append(message)
                continue
            self._dispatch(message)

    def _dispatch(self, message: ControlMessage) -> None:
        if isinstance(message, PacketIn):
            self.packet_ins.increment()
            self.on_packet_in(message)
        elif isinstance(message, FlowRemoved):
            self.on_flow_removed(message)
        elif isinstance(message, PortStatsReply):
            self.on_port_stats(message)
        else:
            raise OpenFlowError(f"controller {self.name} cannot handle {type(message).__name__}")

    def on_packet_in(self, message: PacketIn) -> None:
        """Handle an unmatched packet.  Subclasses must override."""
        raise NotImplementedError

    def on_flow_removed(self, message: FlowRemoved) -> None:
        """Handle a flow-expiry notification (default: ignore)."""

    def on_port_stats(self, message: PortStatsReply) -> None:
        """Handle a port-statistics reply (default: ignore)."""

    # ------------------------------------------------------------------
    # Controller → switch helpers
    # ------------------------------------------------------------------

    def install_flow(
        self,
        switch: OpenFlowSwitch | str,
        match: Match,
        actions: Sequence[Action],
        *,
        priority: int = DEFAULT_PRIORITY,
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        cookie: str = "",
        buffer_id: Optional[int] = None,
    ) -> FlowMod:
        """Send a flow-mod installing a cached decision on ``switch``."""
        message = FlowMod(
            match=match,
            actions=tuple(actions),
            priority=priority,
            idle_timeout=idle_timeout,
            hard_timeout=hard_timeout,
            cookie=cookie,
            buffer_id=buffer_id,
        )
        self.flow_mods.increment()
        self.channel_for(switch).send_to_switch(message)
        return message

    def remove_flows(
        self,
        switch: OpenFlowSwitch | str,
        match: Match,
        *,
        strict: bool = False,
    ) -> FlowMod:
        """Send a flow-mod deleting entries covered by ``match`` on ``switch``."""
        message = FlowMod(
            match=match,
            command=FlowModCommand.DELETE_STRICT if strict else FlowModCommand.DELETE,
        )
        self.flow_mods.increment()
        self.channel_for(switch).send_to_switch(message)
        return message

    def remove_flows_by_cookie(self, switch: OpenFlowSwitch | str, cookie: str) -> FlowMod:
        """Send a wildcard delete scoped to one decision's ``cookie``.

        Removes every entry the decision installed on ``switch`` and
        nothing else — the message the path unwinder sends to the other
        hops when a ``FlowRemoved`` reports one hop's entry gone.
        """
        message = FlowMod(
            match=Match(),
            command=FlowModCommand.DELETE,
            cookie=cookie,
        )
        self.flow_mods.increment()
        self.channel_for(switch).send_to_switch(message)
        return message

    def send_packet_out(
        self,
        switch: OpenFlowSwitch | str,
        *,
        actions: Sequence[Action],
        buffer_id: Optional[int] = None,
        packet=None,
        in_port: Optional[int] = None,
    ) -> PacketOut:
        """Release a buffered packet (or inject a new one) on ``switch``."""
        message = PacketOut(
            actions=tuple(actions), buffer_id=buffer_id, packet=packet, in_port=in_port
        )
        self.packet_outs.increment()
        self.channel_for(switch).send_to_switch(message)
        return message

    def broadcast_flow(self, match: Match, actions: Sequence[Action], **kwargs) -> None:
        """Install the same flow entry on every registered switch."""
        for switch in self.switches():
            self.install_flow(switch, match, actions, **kwargs)

    # ------------------------------------------------------------------
    # Failure harness hooks
    # ------------------------------------------------------------------

    def halt(self) -> None:
        """Model a crashed controller process.

        A halted controller neither processes nor emits messages; its
        in-flight state (pending punts, scheduled decisions) freezes in
        place until a failover exports it or :meth:`resume` revives the
        replica.
        """
        self.halted = True

    def resume(self) -> None:
        """Bring a halted controller back (its frozen state thaws as-is)."""
        self.halted = False

    def take_halted_messages(self) -> list[ControlMessage]:
        """Drain the messages that arrived while halted (failover handoff).

        Messages still sitting in the non-blocking inbox — delivered
        before the crash but never dispatched — are part of the dead
        process's backlog too, and come first (they arrived first).
        """
        backlog = list(self._inbox) + self._halted_inbox
        self._inbox.clear()
        self._halted_inbox = []
        return backlog

    # ------------------------------------------------------------------
    # Security harness hook
    # ------------------------------------------------------------------

    def mark_compromised(self) -> None:
        """Mark the controller attacker-controlled (§5.1: all protection is disabled)."""
        self.compromised = True

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, switches={len(self.channels)})"


class LearningSwitchController(Controller):
    """A MAC-learning controller: the simplest functional baseline.

    It provides no security policy at all; everything is forwarded.  The
    baselines package builds on it and the tests use it to validate the
    OpenFlow substrate independently of ident++.
    """

    def __init__(self, name: str = "learning-controller", *, idle_timeout: float = 60.0) -> None:
        super().__init__(name)
        self.idle_timeout = idle_timeout
        # Per-switch MAC → port tables.
        self._mac_tables: dict[str, dict[MACAddress, int]] = {}

    def on_packet_in(self, message: PacketIn) -> None:
        switch = message.switch
        packet = message.packet
        table = self._mac_tables.setdefault(switch.name, {})
        if not packet.eth_src.is_multicast():
            table[packet.eth_src] = message.in_port
        out_port = table.get(packet.eth_dst)
        if out_port is None or out_port == message.in_port:
            self.send_packet_out(
                switch, actions=[FloodAction()], buffer_id=message.buffer_id,
                in_port=message.in_port,
            )
            return
        match = Match.from_packet(packet, in_port=message.in_port)
        self.install_flow(
            switch,
            match,
            [OutputAction(out_port)],
            idle_timeout=self.idle_timeout,
            buffer_id=message.buffer_id,
            cookie="learning",
        )

    def learned_port(self, switch: OpenFlowSwitch | str, mac: MACAddress | str) -> Optional[int]:
        """Return the port ``mac`` was learned on for ``switch`` (testing hook)."""
        name = switch if isinstance(switch, str) else switch.name
        return self._mac_tables.get(name, {}).get(MACAddress(mac))
