"""OpenFlow control-channel messages.

Only the handful of message types the paper's design needs are modelled:
``packet_in`` (switch → controller, an unmatched packet), ``flow_mod``
(controller → switch, install/delete a cached decision), ``packet_out``
(controller → switch, release a buffered packet), ``flow_removed``
(switch → controller, an entry expired) and a minimal port-statistics
exchange used by the collaboration benchmark.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence, TYPE_CHECKING

from repro.netsim.packet import Packet
from repro.openflow.actions import Action
from repro.openflow.flow_table import DEFAULT_PRIORITY
from repro.openflow.match import Match

if TYPE_CHECKING:  # pragma: no cover
    from repro.openflow.switch import OpenFlowSwitch

_buffer_ids = itertools.count(1)
_xids = itertools.count(1)


@dataclass
class ControlMessage:
    """Base class for all control-channel messages."""

    xid: int = field(default_factory=lambda: next(_xids), init=False)


@dataclass
class PacketIn(ControlMessage):
    """Switch → controller: a packet missed the flow table.

    The switch buffers the original packet; ``buffer_id`` lets a later
    :class:`PacketOut` release exactly that packet.
    """

    switch: "OpenFlowSwitch"
    packet: Packet
    in_port: int
    buffer_id: int = field(default_factory=lambda: next(_buffer_ids))
    reason: str = "no_match"


class FlowModCommand:
    """Flow-mod commands (subset of OpenFlow 1.0)."""

    ADD = "add"
    DELETE = "delete"
    DELETE_STRICT = "delete_strict"


@dataclass
class FlowMod(ControlMessage):
    """Controller → switch: install or remove a flow entry."""

    match: Match
    actions: Sequence[Action] = ()
    command: str = FlowModCommand.ADD
    priority: int = DEFAULT_PRIORITY
    idle_timeout: float = 0.0
    hard_timeout: float = 0.0
    cookie: str = ""
    buffer_id: Optional[int] = None

    def is_delete(self) -> bool:
        """Return ``True`` for delete / delete-strict commands."""
        return self.command in (FlowModCommand.DELETE, FlowModCommand.DELETE_STRICT)


@dataclass
class PacketOut(ControlMessage):
    """Controller → switch: emit a packet (a buffered one or a new one)."""

    actions: Sequence[Action] = ()
    buffer_id: Optional[int] = None
    packet: Optional[Packet] = None
    in_port: Optional[int] = None


@dataclass
class FlowRemoved(ControlMessage):
    """Switch → controller: a flow entry expired or was evicted."""

    switch: "OpenFlowSwitch"
    match: Match
    cookie: str = ""
    reason: str = "idle_timeout"
    packet_count: int = 0
    byte_count: int = 0


@dataclass
class StatsRequest(ControlMessage):
    """Controller → switch: request port counters.

    ``requester`` names the controller the reply must return to; the
    control channel stamps it on send, so a multi-channel switch does
    not answer one shard's request on another shard's channel.
    """

    port: Optional[int] = None
    requester: Optional[str] = None


@dataclass
class PortStatsReply(ControlMessage):
    """Switch → controller: port counters."""

    switch: "OpenFlowSwitch"
    stats: dict[int, dict[str, float]] = field(default_factory=dict)
