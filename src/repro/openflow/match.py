"""The OpenFlow 1.0 10-tuple match structure.

§3.1 of the paper: "OpenFlow defines a flow as a 10-tuple {Ingress port,
MAC source and destination addresses, Ethernet type, VLAN identifier, IP
source and destination addresses, IP protocol, transport source and
destination ports}" — a superset of the ident++ 5-tuple.

A :class:`Match` leaves any subset of those fields wildcarded (``None``).
IP address fields additionally accept CIDR prefixes so a single flow
entry can cover a subnet, which the ident++ controller uses when caching
decisions about whole departments.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional, Union

from repro.exceptions import MatchError
from repro.netsim.addresses import IPv4Address, IPv4Network, MACAddress
from repro.netsim.packet import Packet

_IPField = Union[IPv4Address, IPv4Network, str, None]


@dataclass(frozen=True)
class Match:
    """An OpenFlow 10-tuple match; ``None`` fields are wildcards.

    Attributes:
        in_port: Ingress port number on the switch.
        dl_src / dl_dst: Ethernet source / destination address.
        dl_type: EtherType.
        vlan_id: VLAN identifier (0 = untagged).
        nw_src / nw_dst: IPv4 source / destination, exact address or CIDR prefix.
        nw_proto: IP protocol number.
        tp_src / tp_dst: Transport source / destination port.
    """

    in_port: Optional[int] = None
    dl_src: Optional[MACAddress] = None
    dl_dst: Optional[MACAddress] = None
    dl_type: Optional[int] = None
    vlan_id: Optional[int] = None
    nw_src: _IPField = None
    nw_dst: _IPField = None
    nw_proto: Optional[int] = None
    tp_src: Optional[int] = None
    tp_dst: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "dl_src", _normalize_mac(self.dl_src))
        object.__setattr__(self, "dl_dst", _normalize_mac(self.dl_dst))
        object.__setattr__(self, "nw_src", _normalize_ip(self.nw_src))
        object.__setattr__(self, "nw_dst", _normalize_ip(self.nw_dst))
        for name in ("tp_src", "tp_dst"):
            value = getattr(self, name)
            if value is not None and not 0 <= value <= 0xFFFF:
                raise MatchError(f"{name} out of range: {value}")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_packet(cls, packet: Packet, in_port: Optional[int] = None) -> "Match":
        """Return the exact-match (no wildcards except possibly in_port) for a packet."""
        return cls(
            in_port=in_port,
            dl_src=packet.eth_src,
            dl_dst=packet.eth_dst,
            dl_type=packet.eth_type,
            vlan_id=packet.vlan_id,
            nw_src=packet.ip_src,
            nw_dst=packet.ip_dst,
            nw_proto=packet.ip_proto if packet.is_ip() else None,
            tp_src=packet.tp_src if packet.is_ip() else None,
            tp_dst=packet.tp_dst if packet.is_ip() else None,
        )

    @classmethod
    def from_five_tuple(
        cls,
        ip_src: _IPField,
        ip_dst: _IPField,
        proto: Optional[int],
        tp_src: Optional[int],
        tp_dst: Optional[int],
    ) -> "Match":
        """Return a match over the ident++ 5-tuple only (layer-2 fields wildcarded)."""
        return cls(nw_src=ip_src, nw_dst=ip_dst, nw_proto=proto, tp_src=tp_src, tp_dst=tp_dst)

    @classmethod
    def wildcard(cls) -> "Match":
        """Return the match-everything entry."""
        return cls()

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------

    def matches(self, packet: Packet, in_port: Optional[int] = None) -> bool:
        """Return ``True`` if the packet (arriving on ``in_port``) matches."""
        if self.in_port is not None and self.in_port != in_port:
            return False
        if self.dl_src is not None and self.dl_src != packet.eth_src:
            return False
        if self.dl_dst is not None and self.dl_dst != packet.eth_dst:
            return False
        if self.dl_type is not None and self.dl_type != packet.eth_type:
            return False
        if self.vlan_id is not None and self.vlan_id != packet.vlan_id:
            return False
        if not _ip_field_matches(self.nw_src, packet.ip_src):
            return False
        if not _ip_field_matches(self.nw_dst, packet.ip_dst):
            return False
        if self.nw_proto is not None and (not packet.is_ip() or self.nw_proto != packet.ip_proto):
            return False
        if self.tp_src is not None and (not packet.is_ip() or self.tp_src != packet.tp_src):
            return False
        if self.tp_dst is not None and (not packet.is_ip() or self.tp_dst != packet.tp_dst):
            return False
        return True

    def specificity(self) -> int:
        """Return how many fields are constrained (used to break priority ties)."""
        count = 0
        for field_def in fields(self):
            if getattr(self, field_def.name) is not None:
                count += 1
        return count

    def is_exact(self) -> bool:
        """Return ``True`` when every field is constrained (no wildcards)."""
        return self.specificity() == len(fields(self))

    def covers(self, other: "Match") -> bool:
        """Return ``True`` if every packet matching ``other`` also matches ``self``.

        Used when removing overlapping entries from a flow table.
        """
        for field_def in fields(self):
            mine = getattr(self, field_def.name)
            theirs = getattr(other, field_def.name)
            if mine is None:
                continue
            if theirs is None:
                return False
            if field_def.name in ("nw_src", "nw_dst"):
                if not _ip_field_covers(mine, theirs):
                    return False
            elif mine != theirs:
                return False
        return True

    def five_tuple(self) -> tuple:
        """Return the ident++ 5-tuple slice of this match."""
        return (self.nw_src, self.nw_dst, self.nw_proto, self.tp_src, self.tp_dst)

    def __str__(self) -> str:
        parts = []
        for field_def in fields(self):
            value = getattr(self, field_def.name)
            if value is not None:
                parts.append(f"{field_def.name}={value}")
        return "Match(" + ", ".join(parts) + ")" if parts else "Match(*)"


def _normalize_mac(value: object) -> Optional[MACAddress]:
    if value is None or isinstance(value, MACAddress):
        return value
    return MACAddress(value)  # type: ignore[arg-type]


def _normalize_ip(value: object) -> _IPField:
    if value is None or isinstance(value, (IPv4Address, IPv4Network)):
        return value
    if isinstance(value, str):
        if "/" in value:
            return IPv4Network(value)
        return IPv4Address(value)
    if isinstance(value, int):
        return IPv4Address(value)
    raise MatchError(f"cannot interpret {value!r} as an IP match field")


def _ip_field_matches(field_value: _IPField, packet_value: Optional[IPv4Address]) -> bool:
    if field_value is None:
        return True
    if packet_value is None:
        return False
    if isinstance(field_value, IPv4Network):
        return packet_value in field_value
    return field_value == packet_value


def _ip_field_covers(mine: _IPField, theirs: _IPField) -> bool:
    """Return True if the address set of ``theirs`` is a subset of ``mine``."""
    if isinstance(mine, IPv4Address):
        if isinstance(theirs, IPv4Address):
            return mine == theirs
        return False
    if isinstance(mine, IPv4Network):
        if isinstance(theirs, IPv4Address):
            return theirs in mine
        if isinstance(theirs, IPv4Network):
            return theirs in mine
    return False
