"""The switch ↔ controller control channel.

OpenFlow runs its control connection out of band (or at least logically
separated) from the datapath.  :class:`ControllerChannel` models that
connection as a pair of message queues with a configurable one-way
latency; message delivery is scheduled on the simulator so flow-setup
latency measurements (experiment E1/E10) include control-channel
round-trips.

The channel also exposes ``connected`` so the security harness can model
a switch losing its controller (fail-open / fail-closed behaviour).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.exceptions import ChannelError
from repro.netsim.events import Simulator
from repro.netsim.statistics import Counter
from repro.openflow.messages import ControlMessage, StatsRequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.openflow.controller_base import Controller
    from repro.openflow.switch import OpenFlowSwitch

#: Default one-way control-channel latency: 200 microseconds.
DEFAULT_CONTROL_LATENCY = 200e-6


class ControllerChannel:
    """A bidirectional control channel between one switch and one controller."""

    def __init__(
        self,
        switch: "OpenFlowSwitch",
        controller: "Controller",
        *,
        latency: float = DEFAULT_CONTROL_LATENCY,
    ) -> None:
        if latency < 0:
            raise ChannelError(f"negative control-channel latency: {latency}")
        self.switch = switch
        self.controller = controller
        self.latency = latency
        self.connected = True
        # Counter names carry both endpoints: with several controllers
        # per switch (cluster shards) a bare "->controller" name would
        # collide across channels and make the stats unattributable.
        self.to_controller_messages = Counter(f"{switch.name}->{controller.name}.messages")
        self.to_switch_messages = Counter(f"{controller.name}->{switch.name}.messages")

    def _sim(self) -> Simulator:
        sim = self.switch.sim or getattr(self.controller, "sim", None)
        if sim is None:
            raise ChannelError(
                f"control channel for {self.switch.name} has no simulator attached"
            )
        return sim

    def send_to_controller(self, message: ControlMessage) -> None:
        """Deliver a message from the switch to the controller after the channel latency."""
        if not self.connected:
            return
        self.to_controller_messages.increment()
        self._sim().schedule(
            self.latency,
            self.controller.handle_message,
            message,
            label=f"ctrl-rx:{self.switch.name}",
        )

    def send_to_switch(self, message: ControlMessage) -> None:
        """Deliver a message from the controller to the switch after the channel latency."""
        if not self.connected:
            return
        if isinstance(message, StatsRequest) and message.requester is None:
            # Stamp the reply address: a multi-channel switch must answer
            # on this channel, not whichever one it attached last.
            message.requester = self.controller.name
        self.to_switch_messages.increment()
        self._sim().schedule(
            self.latency,
            self.switch.handle_message,
            message,
            label=f"switch-rx:{self.switch.name}",
        )

    def disconnect(self) -> None:
        """Tear the channel down (messages are silently dropped afterwards)."""
        self.connected = False

    def reconnect(self) -> None:
        """Bring the channel back up."""
        self.connected = True

    def __repr__(self) -> str:
        state = "up" if self.connected else "down"
        return f"ControllerChannel({self.switch.name}, latency={self.latency}, {state})"
