"""E12 — ablation of the design choices §3.2/§3.4 call out.

Two ablations:

* **Response augmentation off** — without on-path controllers adding
  sections to responses, the collaboration policy cannot mark unwanted
  flows and the bottleneck savings of E7 disappear.
* **Section semantics** — the ``@src[key]`` "latest value wins" rule vs
  the ``*@src[key]`` concatenation across sections: a policy that checks
  the full endorsement chain catches a value that changed between
  networks, which latest-value lookup alone misses.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.identpp.flowspec import FlowSpec
from repro.identpp.keyvalue import ResponseDocument
from repro.pf.evaluator import PolicyEvaluator
from repro.pf.parser import parse_ruleset
from repro.workloads.comparative import CollaborationScenario

FLOW = FlowSpec.tcp("10.1.0.10", "10.2.0.10", 40000, 9999)


def test_ablation_interception(benchmark):
    def run_pair():
        with_aug = CollaborationScenario(collaborate=True, flows=8, packets_per_flow=3).run()
        without_aug = CollaborationScenario(collaborate=False, flows=8, packets_per_flow=3).run()
        return with_aug, without_aug

    with_aug, without_aug = benchmark(run_pair)
    rows = [
        {"configuration": "with response augmentation (§3.4)",
         "bottleneck_bytes": with_aug.bottleneck_bytes},
        {"configuration": "augmentation disabled (ablation)",
         "bottleneck_bytes": without_aug.bottleneck_bytes},
    ]
    emit(format_table(rows, title="E12a — ablation: on-path response augmentation"))
    assert with_aug.bottleneck_bytes < without_aug.bottleneck_bytes


def test_ablation_concatenated_lookup(benchmark):
    """``*@src`` catches an identity overwritten by a later section; ``@src`` does not."""
    latest_policy = PolicyEvaluator(parse_ruleset(
        "block all\npass all with eq(@src[userID], trusted)"), default_action="block")
    chain_policy = PolicyEvaluator(parse_ruleset(
        "block all\n"
        "pass all with eq(@src[userID], trusted) with eq(*@src[userID], trusted)"
    ), default_action="block")

    # An upstream section said "mallory"; a later (on-path) section overwrote
    # it with "trusted".  The endorsement chain is inconsistent.
    overwritten = ResponseDocument()
    overwritten.add_section({"userID": "mallory"}, source="end-host")
    overwritten.add_section({"userID": "trusted"}, source="on-path-controller")

    consistent = ResponseDocument()
    consistent.add_section({"userID": "trusted"}, source="end-host")

    verdicts = benchmark(lambda: (
        latest_policy.evaluate(FLOW, overwritten).action,
        chain_policy.evaluate(FLOW, overwritten).action,
        chain_policy.evaluate(FLOW, consistent).action,
    ))
    latest_only, chain_on_overwritten, chain_on_consistent = verdicts
    rows = [
        {"lookup": "@src only (latest value wins)", "overwritten_chain": latest_only,
         "consistent_chain": latest_policy.evaluate(FLOW, consistent).action},
        {"lookup": "@src and *@src (whole chain checked)", "overwritten_chain": chain_on_overwritten,
         "consistent_chain": chain_on_consistent},
    ]
    emit(format_table(rows, title="E12b — ablation: latest-value vs concatenated lookup"))
    assert latest_only == "pass"          # fooled by the overwrite
    assert chain_on_overwritten == "block"  # chain check catches it
    assert chain_on_consistent == "pass"
