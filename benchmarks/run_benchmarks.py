#!/usr/bin/env python
"""Run the hot-path benchmark suite and write ``BENCH_results.json``.

Unlike the ``bench_*.py`` experiment reproductions (which run under
pytest), this is a plain script so CI and future PRs have a stable,
dependency-free perf trajectory to compare against::

    python benchmarks/run_benchmarks.py          # or: make bench

Each benchmark reports operations per second; the JSON file maps
benchmark name -> {ops_per_sec, iterations, seconds}.  Derived ratios
(e.g. the compiled-vs-interpreted speedup the PR acceptance criteria
track) are included under ``derived``.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.core.cache import DecisionCache  # noqa: E402
from repro.core.policy_engine import PolicyEngine  # noqa: E402
from repro.identpp.flowspec import FlowSpec  # noqa: E402
from repro.identpp.keyvalue import ResponseDocument  # noqa: E402
from repro.netsim.packet import Packet  # noqa: E402
from repro.openflow.actions import OutputAction  # noqa: E402
from repro.openflow.flow_table import FlowTable, make_entry  # noqa: E402
from repro.openflow.match import Match  # noqa: E402
from repro.pf.evaluator import PolicyEvaluator  # noqa: E402
from repro.pf.parser import parse_ruleset  # noqa: E402
from repro.workloads.churn import ChurnConfig, ChurnSoak, error_probe  # noqa: E402
from repro.workloads.cluster import (  # noqa: E402
    CLUSTER_SPEEDUP_FLOOR,
    ClusterFailoverChurn,
    ClusterScaleBench,
)
from repro.workloads.determinism import DeterminismGate  # noqa: E402
from repro.workloads.experiment import (  # noqa: E402
    MATRIX_MIN_CELLS,
    run_default_matrix,
)
from repro.workloads.decision_core import (  # noqa: E402
    ASYNC_DEGRADATION_CEILING,
    OVERLAP_SPEEDUP_FLOOR,
    AsyncChurnSoak,
    DecisionOverlapBench,
)
from repro.workloads.fabric import (  # noqa: E402
    FABRIC_SLOWDOWN_CEILING,
    FabricScaleBench,
)
from repro.workloads.generators import FlowGenerator, FlowTemplate  # noqa: E402
from repro.workloads.paper_configs import figure2_control_files  # noqa: E402
from repro.workloads.queryload import (  # noqa: E402
    QUERY_SPEEDUP_FLOOR,
    QueryLoadBench,
)
from repro.workloads.telemetry import (  # noqa: E402
    TELEMETRY_OVERHEAD_CEILING,
    ConfickerTelemetryBench,
    TelemetryOverheadBench,
)

RESULTS_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_results.json")


def _timeit(fn, *, min_seconds: float = 0.2, max_iterations: int = 200_000) -> dict:
    """Time ``fn`` until ``min_seconds`` of wall clock have been spent."""
    fn()  # warm-up (compilation, caches)
    iterations = 0
    elapsed = 0.0
    batch = 1
    while elapsed < min_seconds and iterations < max_iterations:
        start = time.perf_counter()
        for _ in range(batch):
            fn()
        elapsed += time.perf_counter() - start
        iterations += batch
        batch = min(batch * 2, 4096)
    return {
        "ops_per_sec": round(iterations / elapsed, 1),
        "iterations": iterations,
        "seconds": round(elapsed, 4),
    }


def _e10b_policy(rule_count: int) -> PolicyEvaluator:
    lines = ["block all"]
    for index in range(rule_count):
        lines.append(
            f"pass from any to 10.{index % 250}.0.0/16 port {1000 + index} "
            f"with eq(@src[name], app{index})"
        )
    return PolicyEvaluator(parse_ruleset("\n".join(lines)), default_action="block")


def _src_doc() -> ResponseDocument:
    document = ResponseDocument()
    document.add_section({"name": "app1", "userID": "alice"})
    return document


def bench_policy_evaluator(results: dict) -> None:
    flow = FlowSpec.tcp("192.168.0.10", "10.1.2.3", 40000, 1001)
    src = _src_doc()
    for size in (10, 100, 500, 2000):
        evaluator = _e10b_policy(size)
        results[f"policy_eval_interpreted_{size}"] = _timeit(
            lambda: evaluator.evaluate_interpreted(flow, src, None)
        )
        results[f"policy_eval_compiled_{size}"] = _timeit(
            lambda: evaluator.evaluate(flow, src, None)
        )
    evaluator = _e10b_policy(2000)
    batch = [(flow, src, None)] * 256

    def run_batch() -> None:
        evaluator.evaluate_batch(batch)

    timing = _timeit(run_batch, min_seconds=0.2)
    # report per-evaluation throughput, not per-batch
    timing["ops_per_sec"] = round(timing["ops_per_sec"] * len(batch), 1)
    timing["iterations"] = timing["iterations"] * len(batch)
    results["policy_eval_batch_2000"] = timing
    stats = evaluator.stats()
    results["policy_eval_index_stats"] = {
        "indexed_rules": stats["indexed_rules"],
        "scan_bucket_rules": stats["scan_bucket_rules"],
        "candidates_visited": stats["candidates_visited"],
        "rules_checked": stats["rules_checked"],
    }


def bench_policy_engine(results: dict) -> None:
    engine = PolicyEngine(default_action="block")
    engine.add_control_files(figure2_control_files())
    flow = FlowSpec.tcp("192.168.0.10", "192.168.1.1", 40000, 80)
    src = ResponseDocument()
    src.add_section({"name": "http"})
    results["engine_decide_figure2"] = _timeit(lambda: engine.decide(flow, src, None))
    items = [(flow, src, None)] * 128

    def run_batch() -> None:
        engine.decide_batch(items)

    timing = _timeit(run_batch, min_seconds=0.2)
    timing["ops_per_sec"] = round(timing["ops_per_sec"] * len(items), 1)
    timing["iterations"] = timing["iterations"] * len(items)
    results["engine_decide_batch_figure2"] = timing


def bench_decision_cache(results: dict) -> None:
    cache = DecisionCache(ttl=0.0)
    flows = [FlowSpec.tcp("10.0.0.1", "10.0.1.1", 1000 + i, 80) for i in range(512)]
    for i, flow in enumerate(flows):
        cache.store(flow, "pass", f"cookie-{i}", now=0.0, keep_state=(i % 4 == 0))
    hit_flow = flows[17]
    results["decision_cache_hit"] = _timeit(lambda: cache.lookup(hit_flow, now=1.0))
    miss_flow = FlowSpec.tcp("172.16.0.1", "172.16.0.2", 5, 5)
    results["decision_cache_miss"] = _timeit(lambda: cache.lookup(miss_flow, now=1.0))

    def churn_cookie() -> None:
        cache.store(hit_flow, "pass", "cookie-churn", now=0.0)
        cache.invalidate_cookie("cookie-churn")

    results["decision_cache_invalidate_cookie"] = _timeit(churn_cookie)


def bench_flow_table(results: dict) -> None:
    table = FlowTable()
    for i in range(256):
        match = Match.from_five_tuple(f"10.0.{i}.1", "10.1.0.1", 6, 40000 + i, 80)
        table.install(make_entry(match, [OutputAction(1)]))
    packet = Packet.tcp("10.0.17.1", "10.1.0.1", 40017, 80)
    results["flow_table_lookup_repeat"] = _timeit(lambda: table.lookup(packet, now=0.0))
    results["packet_wire_size"] = _timeit(packet.wire_size)


def bench_flow_generator(results: dict) -> None:
    templates = [
        FlowTemplate(
            src_host=f"h{i}",
            dst_host="server",
            src_ip=f"10.0.0.{i + 1}",
            dst_ip="10.1.0.1",
            dst_port=80,
            app_name="web",
            user_name="alice",
        )
        for i in range(32)
    ]
    generator = FlowGenerator(templates, seed=7, zipf_skew=1.1)
    entry = _timeit(lambda: generator.draw_batch(64))
    entry["seed"] = generator.seed
    results["flow_generator_draw_batch_64"] = entry

    engine = PolicyEngine(default_action="block")
    engine.add_control_file("00", "block all\npass from any to any port 80")

    def decide_generated_batches() -> None:
        for batch in generator.batches(128, 32):
            engine.decide_batch([(flow, None, None) for _, flow in batch])

    timing = _timeit(decide_generated_batches, min_seconds=0.2)
    timing["ops_per_sec"] = round(timing["ops_per_sec"] * 128, 1)
    timing["iterations"] = timing["iterations"] * 128
    results["generator_to_engine_batches"] = timing


def bench_churn_soak(results: dict) -> None:
    """Soak: 100k short-lived flows; state must stay bounded, errors fail closed."""
    report = ChurnSoak(ChurnConfig(flows=100_000)).run()
    soak = report.as_dict()
    soak["ops_per_sec"] = soak.pop("flows_per_sec")
    results["soak_churn_100k"] = soak
    results["soak_fail_closed_probe"] = error_probe()


def bench_cluster(results: dict) -> None:
    """Cluster: 4-shard decision throughput vs 1 shard + failover zero-loss soak."""
    scale = ClusterScaleBench().run()
    entry = scale.as_dict()
    # Headline ops/s: aggregate decided-flows per simulated second at 4 shards.
    shard_counts = sorted(scale.throughput_by_shards)
    entry["ops_per_sec"] = round(scale.throughput_by_shards[shard_counts[-1]], 1)
    results["cluster_scale_1_to_4"] = entry
    results["cluster_failover_churn"] = ClusterFailoverChurn().run().as_dict()


def bench_fabric(results: dict) -> None:
    """Fabric: path-wide install, mid-path fail-closed, 4-leaf throughput."""
    report = FabricScaleBench().run()
    entry = report.as_dict()
    # Headline ops/s: decided-flows per simulated second on the 4-leaf fabric.
    entry["ops_per_sec"] = entry["fabric_decided_per_vsec"]
    results["fabric_scale_bench"] = entry


def bench_decision_core(results: dict) -> None:
    """Decision core: query/eval overlap under daemon latency + async churn soak."""
    overlap = DecisionOverlapBench().run()
    entry = overlap.as_dict()
    # Headline ops/s: async decided-flows per simulated second at the
    # 10x daemon-latency scale (the overlap payoff).
    top = overlap.scale_keys[-1]
    entry["ops_per_sec"] = entry["decided_flows_per_vsec"]["async"][top]
    results["decision_overlap_bench"] = entry
    results["soak_async_decisions"] = AsyncChurnSoak().run().as_dict()


def bench_determinism(results: dict) -> None:
    """Determinism gate: double-run both sanitized scenarios, compare trace hashes."""
    results["determinism_double_run"] = DeterminismGate().as_dict()


def bench_telemetry(results: dict) -> None:
    """Telemetry plane: outbreak detection by telemetry alone + sampling cost."""
    results["telemetry_conficker_detection"] = ConfickerTelemetryBench().run().as_dict()
    results["telemetry_overhead"] = TelemetryOverheadBench().run().as_dict()


def bench_experiment_matrix(results: dict) -> None:
    """ROADMAP item 3: the committed scenario matrix with per-cell invariants."""
    results["experiment_matrix"] = run_default_matrix(nb_repeats=2).as_dict()


def bench_queryload(results: dict) -> None:
    """Query engine: hot-server speedup, invalidation, push identity plane."""
    report = QueryLoadBench().run()
    entry = report.as_dict()
    # Headline ops/s: cached decided-flows per simulated second.
    entry["ops_per_sec"] = entry["cached_decided_per_vsec"]
    results["query_cache_bench"] = entry


def main() -> int:
    results: dict = {}
    print("running hot-path benchmarks ...")
    bench_policy_evaluator(results)
    bench_policy_engine(results)
    bench_decision_cache(results)
    bench_flow_table(results)
    bench_flow_generator(results)
    print("running churn soak ...")
    bench_churn_soak(results)
    print("running cluster scale + failover benches ...")
    bench_cluster(results)
    print("running fabric path-wide enforcement bench ...")
    bench_fabric(results)
    print("running query-cache bench ...")
    bench_queryload(results)
    print("running decision-core overlap bench + async soak ...")
    bench_decision_core(results)
    print("running determinism double-run gate ...")
    bench_determinism(results)
    print("running telemetry detection + overhead benches ...")
    bench_telemetry(results)
    print("running experiment scenario matrix ...")
    bench_experiment_matrix(results)

    # Per-invariant verdicts across every matrix cell: an invariant's
    # gate is true only when it passed in every cell it applied to.
    matrix = results["experiment_matrix"]
    matrix_invariants: dict = {}
    for cell in matrix["cells"]:
        for invariant, entry in cell["invariants"].items():
            matrix_invariants[invariant] = (
                matrix_invariants.get(invariant, True) and entry["passed"]
            )

    derived = {
        "compiled_speedup_2000_rules": round(
            results["policy_eval_compiled_2000"]["ops_per_sec"]
            / results["policy_eval_interpreted_2000"]["ops_per_sec"],
            1,
        ),
        "batch_speedup_2000_rules": round(
            results["policy_eval_batch_2000"]["ops_per_sec"]
            / results["policy_eval_interpreted_2000"]["ops_per_sec"],
            1,
        ),
        "soak_state_bounded": results["soak_churn_100k"]["bounded_within_2x"],
        "soak_fail_closed": results["soak_fail_closed_probe"]["failed_closed"],
        "cluster_speedup_4_shards": results["cluster_scale_1_to_4"]["speedup"],
        "cluster_failover_zero_loss": results["cluster_failover_churn"]["zero_loss"],
        "fabric_one_punt_per_flow": (
            results["fabric_scale_bench"]["punts_total"]
            == results["fabric_scale_bench"]["flows"]
        ),
        "fabric_fail_closed": results["fabric_scale_bench"]["fail_closed"]
        and results["fabric_scale_bench"]["unwound"],
        "fabric_slowdown_vs_single_switch": results["fabric_scale_bench"][
            "slowdown_vs_single_switch"
        ],
        "query_cache_speedup": results["query_cache_bench"]["speedup"],
        "query_cache_invalidation_ok": all(
            results["query_cache_bench"]["invalidation"].values()
        ),
        "push_zero_query_ok": results["query_cache_bench"]["push_plane"][
            "zero_query_ok"
        ],
        "push_convergence_beats_pull": results["query_cache_bench"]["push_plane"][
            "convergence_ok"
        ],
        "decision_overlap_speedup": results["decision_overlap_bench"]["overlap_speedup"],
        "decision_async_degradation": results["decision_overlap_bench"][
            "async_degradation"
        ],
        "async_soak_bounded": results["soak_async_decisions"]["bounded"],
        "determinism_trace_identical": results["determinism_double_run"][
            "all_identical"
        ],
        "telemetry_conficker_detected": results["telemetry_conficker_detection"][
            "detected"
        ],
        "telemetry_overhead_pct": results["telemetry_overhead"]["overhead_pct"],
        "matrix_cells": matrix["cells_total"],
        "matrix_cells_failed": matrix["cells_failed"],
        "matrix_invariant_gates": {
            name: matrix_invariants[name] for name in sorted(matrix_invariants)
        },
        "matrix_all_cells_pass": matrix["passed"],
    }
    payload = {
        "command": "python benchmarks/run_benchmarks.py",
        "python": platform.python_version(),
        "results": results,
        "derived": derived,
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    width = max(len(name) for name in results)
    for name, timing in results.items():
        if "ops_per_sec" in timing:
            print(f"  {name:<{width}}  {timing['ops_per_sec']:>14,.0f} ops/s")
    for name, value in derived.items():
        suffix = "x" if isinstance(value, (int, float)) and not isinstance(value, bool) else ""
        print(f"  {name:<{width}}  {value!s:>13}{suffix}")
    print(f"wrote {os.path.relpath(RESULTS_PATH)}")
    if derived["compiled_speedup_2000_rules"] < 5.0:
        print("FAIL: compiled speedup at 2000 rules below the 5x acceptance floor")
        return 1
    if not derived["soak_state_bounded"]:
        print("FAIL: churn soak left unbounded flow state (see soak_churn_100k.violations)")
        return 1
    if not derived["soak_fail_closed"]:
        print("FAIL: PFError flow was not failed closed in the soak probe")
        return 1
    if derived["cluster_speedup_4_shards"] < CLUSTER_SPEEDUP_FLOOR:
        print(
            f"FAIL: 4-shard cluster speedup below the "
            f"{CLUSTER_SPEEDUP_FLOOR:g}x acceptance floor"
        )
        return 1
    if not derived["cluster_failover_zero_loss"]:
        print("FAIL: cluster failover lost flows (see cluster_failover_churn.violations)")
        return 1
    if not results["fabric_scale_bench"]["gates_ok"]:
        print("FAIL: fabric bench gates failed (see fabric_scale_bench.violations)")
        return 1
    if derived["query_cache_speedup"] < QUERY_SPEEDUP_FLOOR:
        print(
            f"FAIL: query-cache speedup below the "
            f"{QUERY_SPEEDUP_FLOOR:g}x acceptance floor"
        )
        return 1
    if not results["query_cache_bench"]["gates_ok"]:
        print("FAIL: query-cache gates failed (see query_cache_bench.violations)")
        return 1
    if not derived["push_zero_query_ok"]:
        print(
            "FAIL: steady-state punts on subscribed hosts issued daemon queries "
            "(see query_cache_bench.push_plane)"
        )
        return 1
    if not derived["push_convergence_beats_pull"]:
        print(
            "FAIL: push-plane convergence after an identity publish did not "
            "beat the pull TTL path (see query_cache_bench.push_plane)"
        )
        return 1
    if derived["decision_overlap_speedup"] < OVERLAP_SPEEDUP_FLOOR:
        print(
            f"FAIL: async-over-serial overlap speedup below the "
            f"{OVERLAP_SPEEDUP_FLOOR:g}x acceptance floor"
        )
        return 1
    if derived["decision_async_degradation"] > ASYNC_DEGRADATION_CEILING:
        print(
            f"FAIL: async core degraded more than {ASYNC_DEGRADATION_CEILING:g}x "
            f"under 10x daemon latency"
        )
        return 1
    if not derived["async_soak_bounded"]:
        print("FAIL: async soak violated its bounds (see soak_async_decisions)")
        return 1
    if not derived["determinism_trace_identical"]:
        print(
            "FAIL: double-run event traces diverged "
            "(see determinism_double_run) — the simulation is not deterministic"
        )
        return 1
    if not derived["telemetry_conficker_detected"]:
        print(
            "FAIL: telemetry plane missed or mis-attributed the conficker "
            "outbreak (see telemetry_conficker_detection.violations)"
        )
        return 1
    if derived["telemetry_overhead_pct"] >= TELEMETRY_OVERHEAD_CEILING:
        print(
            f"FAIL: telemetry sampling overhead at or above the "
            f"{TELEMETRY_OVERHEAD_CEILING:g}% ceiling"
        )
        return 1
    if derived["matrix_cells"] < MATRIX_MIN_CELLS:
        print(
            f"FAIL: experiment matrix has {derived['matrix_cells']} cells, "
            f"below the {MATRIX_MIN_CELLS}-cell acceptance floor"
        )
        return 1
    failed_gates = [
        name for name, ok in derived["matrix_invariant_gates"].items() if not ok
    ]
    if failed_gates or not derived["matrix_all_cells_pass"]:
        for cell in matrix["cells"]:
            for invariant, entry in cell["invariants"].items():
                for violation in entry["violations"]:
                    print(f"  {cell['cell']}: [{invariant}] {violation}")
        print(
            f"FAIL: experiment matrix invariant gate(s) "
            f"{failed_gates or ['<cell failures>']} reported FAIL "
            f"({derived['matrix_cells_failed']} cell(s) violated invariants)"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
