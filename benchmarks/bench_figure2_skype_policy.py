"""E2 — Figure 2: the three-file Skype policy.

Regenerates the flow matrix implied by Figure 2's configuration files:
which flows the concatenated policy passes and blocks, driven through
the full datapath.  The benchmark measures end-to-end evaluation of the
whole matrix.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.workloads.scenarios import SkypeScenario


def test_skype_policy_matrix(benchmark):
    """Benchmark the full Figure 2 flow matrix through the datapath."""

    def run_matrix():
        scenario = SkypeScenario()
        return scenario, scenario.run()

    scenario, results = benchmark(run_matrix)
    rows = [
        {
            "case": result.label,
            "expected": result.expected_action,
            "observed": result.actual_action,
            "delivered": result.delivered,
            "correct": result.correct,
        }
        for result in results
    ]
    emit(format_table(rows, title="E2 / Figure 2 — Skype policy verdicts"))
    assert all(row["correct"] for row in rows)
    assert scenario.net.controller.audit.summary()["total"] == len(rows)
