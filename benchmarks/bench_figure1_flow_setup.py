"""E1 — Figure 1: reactive flow setup through the ident++ controller.

Regenerates the Figure 1 walkthrough as a latency breakdown: control
channel, ident++ queries to both ends, policy evaluation, and end-to-end
delivery of the flow's first packet, swept over link latency and path
length.  The paper reports no numbers; the expected *shape* is that the
ident++ queries dominate flow-setup latency and grow with the distance
between controller-adjacent switch and end-hosts.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.workloads.scenarios import FlowSetupScenario


def test_flow_setup_latency_breakdown(benchmark):
    """Benchmark one complete reactive flow setup (build + punt + query + decide + deliver)."""

    def run_once():
        return FlowSetupScenario(switch_count=2).run()

    measurement = benchmark(run_once)
    assert measurement.delivered

    rows = []
    for switches in (1, 2, 4):
        for latency in (50e-6, 500e-6, 5e-3):
            sample = FlowSetupScenario(switch_count=switches, link_latency=latency).run()
            rows.append({
                "switches": switches,
                "link_latency_ms": latency * 1e3,
                "query_ms": sample.query_latency * 1e3,
                "decision_ms": sample.controller_decision_latency * 1e3,
                "end_to_end_ms": sample.end_to_end_delivery * 1e3,
                "delivered": sample.delivered,
            })
    emit(format_table(rows, title="E1 / Figure 1 — flow-setup latency breakdown"))
    assert all(row["delivered"] for row in rows)
    assert rows[-1]["end_to_end_ms"] > rows[0]["end_to_end_ms"]
