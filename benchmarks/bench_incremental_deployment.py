"""E8 — §4 "Incremental Benefit": partial deployment still pays off.

Two series:

* server-side user identification behind a shared address, with and
  without an end-host daemon (controllers not required), and
* fraction of legitimate flows admitted versus daemon deployment
  fraction, with and without the controller answering for legacy hosts.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.workloads.comparative import (
    NATIdentificationScenario,
    PartialDeploymentScenario,
)


def test_nat_user_identification(benchmark):
    result = benchmark(lambda: NATIdentificationScenario(flows_per_user=3).run())
    without = NATIdentificationScenario(flows_per_user=3, with_daemon=False).run()
    rows = [
        {"deployment": "ident++ daemon on the shared host",
         "flows": result.flows, "identified_fraction": result.identified_fraction,
         "distinct_users_seen": result.distinct_users_reported},
        {"deployment": "no daemon (status quo)",
         "flows": without.flows, "identified_fraction": without.identified_fraction,
         "distinct_users_seen": without.distinct_users_reported},
    ]
    emit(format_table(rows, title="E8a — users behind one address, as seen by the server"))
    assert result.identified_fraction == 1.0
    assert without.identified_fraction == 0.0


def test_partial_deployment_sweep(benchmark):
    def one_point():
        return PartialDeploymentScenario(clients=6, deployment_fraction=0.5).run()

    benchmark(one_point)

    rows = []
    for answers in (False, True):
        for fraction in (0.0, 0.5, 1.0):
            point = PartialDeploymentScenario(
                clients=6, deployment_fraction=fraction,
                controller_answers_for_legacy=answers,
            ).run()
            rows.append({
                "daemon_deployment": fraction,
                "controller_answers_for_legacy": answers,
                "legitimate_flows_allowed": point.allowed_fraction,
            })
    emit(format_table(rows, title="E8b — admitted legitimate flows vs deployment fraction"))
    no_help = [r for r in rows if not r["controller_answers_for_legacy"]]
    helped = [r for r in rows if r["controller_answers_for_legacy"]]
    # without answering, admission tracks deployment; with answering it is complete
    assert no_help[0]["legitimate_flows_allowed"] == 0.0
    assert no_help[-1]["legitimate_flows_allowed"] == 1.0
    assert all(r["legitimate_flows_allowed"] == 1.0 for r in helped)
