"""E3 — Figure 3: the skype ``@app`` daemon configuration.

Regenerates the daemon side of the Skype example: parsing the Figure 3
configuration file and answering an ident++ query for a skype flow with
the configured key/value pairs (including the signed requirements).
The benchmark measures query answering, the daemon's hot path.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.crypto.signatures import Signer
from repro.hosts.applications import standard_applications
from repro.hosts.endhost import EndHost
from repro.identpp.daemon import IdentPPDaemon
from repro.identpp.flowspec import FlowSpec
from repro.identpp.wire import IdentQuery
from repro.workloads.paper_configs import figure3_skype_daemon_config


def build_daemon():
    host = EndHost("lan-a", "192.168.0.10")
    host.install_all(standard_applications())
    host.add_user("alice", ("users", "staff"))
    daemon = IdentPPDaemon(host)
    signer = Signer("skype-vendor", seed=3)
    skype = host.applications.require("skype")
    daemon.load_system_config(figure3_skype_daemon_config(skype, signer))
    packet, _, _ = host.open_flow("skype", "alice", "192.168.1.1", 5060, send=False)
    return daemon, FlowSpec.from_packet(packet)


def test_daemon_answers_query_from_figure3_config(benchmark):
    """Benchmark one daemon query answer (lsof lookup + config sections)."""
    daemon, flow = build_daemon()
    query = IdentQuery(flow=flow, target_role="src")

    response = benchmark(lambda: daemon.answer(query))
    document = response.document
    rows = [{"key": key, "value": (document.latest(key) or "")[:40]}
            for key in ("userID", "groupID", "name", "version", "vendor", "type",
                        "exe-hash", "requirements", "req-sig")]
    emit(format_table(rows, title="E3 / Figure 3 — daemon response for a skype flow"))
    assert document.latest("name") == "skype"
    assert document.latest("version") == "210"
    assert document.latest("req-sig") is not None
    assert document.section_count() >= 2
