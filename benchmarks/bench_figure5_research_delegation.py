"""E4 — Figures 4 and 5: delegation to users (the research application).

Regenerates the research-delegation matrix: researcher-signed
requirements let research apps talk to each other on non-production
machines; anything tampered, unsigned or out of scope is blocked.  The
benchmark measures the delegated decision (which includes parsing the
delegated rules and verifying the RSA signature).
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.identpp.flowspec import FlowSpec
from repro.workloads.scenarios import ResearchDelegationScenario


def test_research_delegation_matrix(benchmark):
    scenario = ResearchDelegationScenario()
    results = scenario.run()
    rows = [
        {"case": r.label, "expected": r.expected_action, "observed": r.actual_action,
         "correct": r.correct}
        for r in results
    ]
    emit(format_table(rows, title="E4 / Figures 4-5 — research delegation verdicts"))
    assert all(row["correct"] for row in rows)

    # Benchmark the delegated decision itself (allowed() + verify() path).
    from repro.identpp.wire import IdentQuery

    controller = scenario.net.controller
    daemon_a = scenario.net.daemon("research-a")
    daemon_b = scenario.net.daemon("research-b")
    host_a = scenario.net.host("research-a")
    packet, _, _ = host_a.open_flow(
        "research-app", "carol", scenario.RESEARCH_B, scenario.APP_PORT, send=False
    )
    good_flow = FlowSpec.from_packet(packet)
    src_doc = daemon_a.answer(IdentQuery(flow=good_flow, target_role="src")).document
    dst_doc = daemon_b.answer(IdentQuery(flow=good_flow, target_role="dst")).document

    decision = benchmark(lambda: controller.decide_flow(good_flow, src_doc, dst_doc))
    assert decision.delegated and "verify" in decision.delegation_functions
