"""E6 — Figure 8: user/application-specific rules (Conficker / MS08-067).

Regenerates the Figure 8 matrix: only ``system`` users reach the Server
service and only when the destination reports the MS08-067 patch;
Conficker-style probes are blocked.  The benchmark measures the whole
matrix through the datapath.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.workloads.scenarios import ConfickerScenario


def test_conficker_mitigation_matrix(benchmark):
    def run_matrix():
        scenario = ConfickerScenario()
        return scenario, scenario.run()

    scenario, results = benchmark(run_matrix)
    rows = [
        {"case": r.label, "expected": r.expected_action, "observed": r.actual_action,
         "correct": r.correct}
        for r in results
    ]
    emit(format_table(rows, title="E6 / Figure 8 — Conficker mitigation verdicts"))
    assert all(row["correct"] for row in rows)
    # The worm probes specifically never reach a Server service.
    worm_rows = [r for r in results if "Conficker" in r.label]
    assert worm_rows and all(not r.delivered for r in worm_rows)
