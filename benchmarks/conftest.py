"""Shared configuration for the benchmark harness.

Each ``bench_*.py`` file regenerates one experiment from DESIGN.md's
per-experiment index (E1–E12).  Benchmarks print the rows/series the
experiment produces; run them with::

    pytest benchmarks/ --benchmark-only -s
"""

import sys


def emit(text: str) -> None:
    """Print a result table so it is visible even with output capture on."""
    sys.stdout.write("\n" + text + "\n")
    sys.stdout.flush()
