"""E5 — Figures 6 and 7: trust delegation to the third party "Secur".

Regenerates the Secur matrix (approved thunderbird reaches mail servers,
everything else blocked) and benchmarks the third-party-verified
decision.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.identpp.flowspec import FlowSpec
from repro.identpp.wire import IdentQuery
from repro.workloads.scenarios import ThirdPartyTrustScenario


def test_thirdparty_trust_matrix(benchmark):
    scenario = ThirdPartyTrustScenario()
    results = scenario.run()
    rows = [
        {"case": r.label, "expected": r.expected_action, "observed": r.actual_action,
         "correct": r.correct}
        for r in results
    ]
    emit(format_table(rows, title="E5 / Figures 6-7 — Secur trust delegation verdicts"))
    assert all(row["correct"] for row in rows)

    controller = scenario.net.controller
    client_host = scenario.net.host("client")
    packet, _, _ = client_host.open_flow(
        "thunderbird", "alice", scenario.MAIL_SERVER, 25, send=False
    )
    flow = FlowSpec.from_packet(packet)
    src_doc = scenario.net.daemon("client").answer(
        IdentQuery(flow=flow, target_role="src")).document
    dst_doc = scenario.net.daemon("mail-server").answer(
        IdentQuery(flow=flow, target_role="dst")).document

    decision = benchmark(lambda: controller.decide_flow(flow, src_doc, dst_doc))
    assert decision.delegated
    assert decision.principals == ("Secur",)
