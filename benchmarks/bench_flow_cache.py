"""E11 — decision caching in switch flow tables (§3.1).

The OpenFlow controller "adds an entry for that flow in the switch's
flow table to cache its decision".  This benchmark drives a skewed
(Zipf) traffic mix through an ident++-protected switch and reports the
flow-table hit rate and the controller load (packet-ins per packet) as
flow locality varies.  Expected shape: the more skewed the popularity
and the more packets per flow, the fewer packets reach the controller.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.core.network import HostSpec, IdentPPNetwork
from repro.workloads.generators import FlowGenerator, FlowTemplate

POLICY = {
    "00-default.control": (
        "block all\n"
        "pass from any to any with member(@src[groupID], staff) keep state\n"
    ),
}


def build_network(clients: int = 4):
    net = IdentPPNetwork("cache-bench")
    switch = net.add_switch("sw")
    names = []
    for index in range(clients):
        name = f"client{index + 1}"
        net.add_host(HostSpec(name=name, ip=f"192.168.0.{10 + index}",
                              users={"alice": ("users", "staff")}), switch=switch)
        names.append(name)
    server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=switch)
    server.run_server("httpd", "root", 80)
    net.set_policy(POLICY)
    return net, names


def drive(net, names, *, packets: int, new_connection_probability: float, zipf_skew):
    templates = [
        FlowTemplate(name, "server", str(net.host(name).ip), "192.168.1.1", 80, "http", "alice")
        for name in names
    ]
    generator = FlowGenerator(templates, seed=11, zipf_skew=zipf_skew)
    sockets = {}
    for template, flow in generator.sequence(packets, new_connection_probability=new_connection_probability):
        host = net.host(template.src_host)
        key = flow.as_tuple()
        if key not in sockets:
            _, socket, _ = host.open_flow(template.app_name, template.user_name,
                                          template.dst_ip, template.dst_port)
            sockets[key] = (host, socket)
        else:
            owner, socket = sockets[key]
            owner.send_on_socket(socket)
        net.topology.run()
    switch = net.switches["sw"]
    stats = switch.flow_table.stats()
    return {
        "packets": packets,
        "distinct_flows": len(sockets),
        "flow_table_hit_rate": round(stats["hit_rate"], 3),
        "controller_packet_ins": int(net.controller.packet_ins.value),
    }


def test_flow_table_cache_hit_rate(benchmark):
    def run_skewed():
        net, names = build_network()
        return drive(net, names, packets=60, new_connection_probability=0.2, zipf_skew=1.2)

    skewed = benchmark(run_skewed)

    rows = [dict(skewed, workload="zipf, long-lived flows")]
    net, names = build_network()
    uniform = drive(net, names, packets=60, new_connection_probability=1.0, zipf_skew=None)
    rows.append(dict(uniform, workload="uniform, every packet a new flow"))
    emit(format_table(rows, title="E11 — switch flow-table caching of controller decisions"))

    assert skewed["flow_table_hit_rate"] > uniform["flow_table_hit_rate"]
    assert skewed["controller_packet_ins"] < uniform["controller_packet_ins"]
