"""E7 — §4 "Network Collaboration": filtering unwanted traffic at the remote branch.

Regenerates the two-branch experiment: branch B's controller augments
ident++ responses with what it will not accept, so branch A drops those
flows before they cross the bottleneck WAN link.  The series reported is
bottleneck bytes and remote controller load versus the unwanted-traffic
fraction, with and without collaboration.  Expected shape: bytes saved
grow proportionally to the unwanted fraction; wanted traffic unaffected.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.workloads.comparative import CollaborationScenario


def run_pair(unwanted_fraction: float, flows: int = 12, packets: int = 3):
    without = CollaborationScenario(collaborate=False, flows=flows,
                                    unwanted_fraction=unwanted_fraction,
                                    packets_per_flow=packets).run()
    with_collab = CollaborationScenario(collaborate=True, flows=flows,
                                        unwanted_fraction=unwanted_fraction,
                                        packets_per_flow=packets).run()
    return without, with_collab


def test_collaboration_saves_bottleneck_bandwidth(benchmark):
    without, with_collab = benchmark(lambda: run_pair(0.5))
    rows = []
    for fraction in (0.0, 0.25, 0.5, 0.75):
        base, collab = run_pair(fraction)
        saved = 1.0 - (collab.bottleneck_bytes / base.bottleneck_bytes) if base.bottleneck_bytes else 0.0
        rows.append({
            "unwanted_fraction": fraction,
            "bottleneck_bytes_no_collab": base.bottleneck_bytes,
            "bottleneck_bytes_collab": collab.bottleneck_bytes,
            "bytes_saved_fraction": round(saved, 3),
            "remote_packet_ins_no_collab": base.remote_packet_ins,
            "remote_packet_ins_collab": collab.remote_packet_ins,
        })
    emit(format_table(rows, title="E7 — network collaboration: bottleneck traffic saved"))
    assert with_collab.bottleneck_bytes < without.bottleneck_bytes
    # savings grow with the unwanted fraction
    assert rows[-1]["bytes_saved_fraction"] > rows[0]["bytes_saved_fraction"]
