"""E10 — flow-setup latency vs. baselines and PF+=2 evaluator throughput.

Two series the paper only alludes to (§3.1 keeps "enforcement in the
network where it can be done at line-rate"):

* reactive flow-setup latency of the ident++ controller (which pays two
  extra end-host round trips) against an Ethane-style controller and a
  plain learning switch on the same topology, and
* PF+=2 policy-evaluation throughput versus ruleset size.

Expected shape: ident++ setup latency ≈ baseline + the end-host query
round trips; per-packet forwarding after setup is identical (cached in
the flow tables); evaluator cost grows roughly linearly with rules.
"""

import time

from conftest import emit

from repro.analysis.report import format_table
from repro.baselines.base import BaselineController
from repro.baselines.ethane import EthanePolicy
from repro.core.network import HostSpec, IdentPPNetwork
from repro.identpp.flowspec import FlowSpec
from repro.identpp.keyvalue import ResponseDocument
from repro.pf.evaluator import PolicyEvaluator
from repro.pf.parser import parse_ruleset
from repro.workloads.scenarios import FlowSetupScenario


def _identpp_setup_latency() -> float:
    return FlowSetupScenario(switch_count=2).run().end_to_end_delivery


def _baseline_setup_latency() -> float:
    net = IdentPPNetwork("ethane-baseline")
    # replace the primary controller with an Ethane-style one on the same shape
    left = net.add_switch("sw-left")
    right = net.add_switch("sw-right")
    net.connect(left, right)
    client = net.add_host(HostSpec(name="client", ip="192.168.0.10",
                                   users={"alice": ("staff",)}, run_daemon=False), switch=left)
    server = net.add_host(HostSpec(name="server", ip="192.168.1.1", run_daemon=False),
                          switch=right)
    server.run_server("httpd", "root", 80)
    policy = EthanePolicy(default_action="pass")
    ethane = BaselineController("ethane", net.topology, policy)
    # steal the switches from the identpp controller: register with ethane instead
    for switch in (left, right):
        switch.channel = None
    ethane.register_switch(left)
    ethane.register_switch(right)
    client.open_flow("http", "alice", "192.168.1.1", 80)
    net.topology.run()
    return server.delivered_times[0] if server.delivered_times else float("nan")


def test_flow_setup_latency_vs_baseline(benchmark):
    identpp_latency = benchmark(_identpp_setup_latency)
    baseline_latency = _baseline_setup_latency()
    rows = [
        {"architecture": "identpp (queries both ends)", "first_packet_ms": identpp_latency * 1e3},
        {"architecture": "ethane-style (no end-host queries)", "first_packet_ms": baseline_latency * 1e3},
        {"architecture": "identpp overhead (ms)",
         "first_packet_ms": (identpp_latency - baseline_latency) * 1e3},
    ]
    emit(format_table(rows, title="E10a — reactive flow setup: first-packet latency"))
    assert identpp_latency > baseline_latency


def _build_policy(rule_count: int) -> PolicyEvaluator:
    lines = ["block all"]
    for index in range(rule_count):
        lines.append(
            f"pass from any to 10.{index % 250}.0.0/16 port {1000 + index} "
            f"with eq(@src[name], app{index})"
        )
    return PolicyEvaluator(parse_ruleset("\n".join(lines)), default_action="block")


def test_policy_evaluation_throughput(benchmark):
    """E10b — interpreted vs compiled evaluator throughput vs ruleset size.

    The interpreted path degrades linearly with rules; the compiled path
    (port/prefix index + closure matchers, the default) stays flat.  The
    series also proves, in the same run, that both paths return identical
    verdicts and that the index is actually being hit.
    """
    flow = FlowSpec.tcp("192.168.0.10", "10.1.2.3", 40000, 1001)
    src = ResponseDocument()
    src.add_section({"name": "app1", "userID": "alice"})
    evaluator = _build_policy(200)

    benchmark(lambda: evaluator.evaluate(flow, src, None))

    rows = []
    speedups = {}
    for size in (10, 100, 500, 2000):
        sized = _build_policy(size)
        iterations = 200

        # Verdict parity on the measured flow, in the measured run.
        interpreted_verdict = sized.evaluate_interpreted(flow, src, None)
        compiled_verdict = sized.evaluate(flow, src, None)
        assert compiled_verdict.action == interpreted_verdict.action
        assert compiled_verdict.rule is interpreted_verdict.rule

        start = time.perf_counter()
        for _ in range(iterations):
            sized.evaluate_interpreted(flow, src, None)
        interpreted_elapsed = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(iterations):
            sized.evaluate(flow, src, None)
        compiled_elapsed = time.perf_counter() - start

        start = time.perf_counter()
        sized.evaluate_batch([(flow, src, None)] * iterations)
        batch_elapsed = time.perf_counter() - start

        stats = sized.stats()
        assert stats["indexed_rules"] == size  # every generated rule indexed
        assert stats["fallback_scans"] == 0
        # Every compiled decision on this policy sees the block-all header
        # plus at most one port bucket entry; anything near the full
        # ruleset size means the index stopped being consulted.
        compiled_evaluations = 2 * iterations + 1
        assert stats["candidates_visited"] <= 4 * compiled_evaluations

        speedups[size] = interpreted_elapsed / compiled_elapsed
        rows.append({
            "rules": size,
            "interpreted_eps": round(iterations / interpreted_elapsed),
            "compiled_eps": round(iterations / compiled_elapsed),
            "batch_eps": round(iterations / batch_elapsed),
            "speedup": round(interpreted_elapsed / compiled_elapsed, 1),
        })
    emit(format_table(rows, title="E10b — PF+=2 evaluator throughput vs ruleset size"))
    assert rows[0]["interpreted_eps"] > rows[-1]["interpreted_eps"]
    # The compiled fast path must beat the interpreted walk by >=5x at 2000 rules.
    assert speedups[2000] >= 5.0
