"""E10 — flow-setup latency vs. baselines and PF+=2 evaluator throughput.

Two series the paper only alludes to (§3.1 keeps "enforcement in the
network where it can be done at line-rate"):

* reactive flow-setup latency of the ident++ controller (which pays two
  extra end-host round trips) against an Ethane-style controller and a
  plain learning switch on the same topology, and
* PF+=2 policy-evaluation throughput versus ruleset size.

Expected shape: ident++ setup latency ≈ baseline + the end-host query
round trips; per-packet forwarding after setup is identical (cached in
the flow tables); evaluator cost grows roughly linearly with rules.
"""

import time

from conftest import emit

from repro.analysis.report import format_table
from repro.baselines.base import BaselineController
from repro.baselines.ethane import EthanePolicy
from repro.core.network import HostSpec, IdentPPNetwork
from repro.identpp.flowspec import FlowSpec
from repro.identpp.keyvalue import ResponseDocument
from repro.pf.evaluator import PolicyEvaluator
from repro.pf.parser import parse_ruleset
from repro.workloads.scenarios import FlowSetupScenario


def _identpp_setup_latency() -> float:
    return FlowSetupScenario(switch_count=2).run().end_to_end_delivery


def _baseline_setup_latency() -> float:
    net = IdentPPNetwork("ethane-baseline")
    # replace the primary controller with an Ethane-style one on the same shape
    left = net.add_switch("sw-left")
    right = net.add_switch("sw-right")
    net.connect(left, right)
    client = net.add_host(HostSpec(name="client", ip="192.168.0.10",
                                   users={"alice": ("staff",)}, run_daemon=False), switch=left)
    server = net.add_host(HostSpec(name="server", ip="192.168.1.1", run_daemon=False),
                          switch=right)
    server.run_server("httpd", "root", 80)
    policy = EthanePolicy(default_action="pass")
    ethane = BaselineController("ethane", net.topology, policy)
    # steal the switches from the identpp controller: register with ethane instead
    for switch in (left, right):
        switch.channel = None
    ethane.register_switch(left)
    ethane.register_switch(right)
    client.open_flow("http", "alice", "192.168.1.1", 80)
    net.topology.run()
    return server.delivered_times[0] if server.delivered_times else float("nan")


def test_flow_setup_latency_vs_baseline(benchmark):
    identpp_latency = benchmark(_identpp_setup_latency)
    baseline_latency = _baseline_setup_latency()
    rows = [
        {"architecture": "identpp (queries both ends)", "first_packet_ms": identpp_latency * 1e3},
        {"architecture": "ethane-style (no end-host queries)", "first_packet_ms": baseline_latency * 1e3},
        {"architecture": "identpp overhead (ms)",
         "first_packet_ms": (identpp_latency - baseline_latency) * 1e3},
    ]
    emit(format_table(rows, title="E10a — reactive flow setup: first-packet latency"))
    assert identpp_latency > baseline_latency


def _build_policy(rule_count: int) -> PolicyEvaluator:
    lines = ["block all"]
    for index in range(rule_count):
        lines.append(
            f"pass from any to 10.{index % 250}.0.0/16 port {1000 + index} "
            f"with eq(@src[name], app{index})"
        )
    return PolicyEvaluator(parse_ruleset("\n".join(lines)), default_action="block")


def test_policy_evaluation_throughput(benchmark):
    flow = FlowSpec.tcp("192.168.0.10", "10.1.2.3", 40000, 1001)
    src = ResponseDocument()
    src.add_section({"name": "app1", "userID": "alice"})
    evaluator = _build_policy(200)

    benchmark(lambda: evaluator.evaluate(flow, src, None))

    rows = []
    for size in (10, 100, 500, 2000):
        sized = _build_policy(size)
        start = time.perf_counter()
        iterations = 200
        for _ in range(iterations):
            sized.evaluate(flow, src, None)
        elapsed = time.perf_counter() - start
        rows.append({
            "rules": size,
            "evaluations_per_second": round(iterations / elapsed),
            "microseconds_per_decision": round(elapsed / iterations * 1e6, 1),
        })
    emit(format_table(rows, title="E10b — PF+=2 evaluator throughput vs ruleset size"))
    assert rows[0]["evaluations_per_second"] > rows[-1]["evaluations_per_second"]
