"""E9 — the §5 security analysis as a quantitative matrix.

For each architecture (ident++, vanilla firewall, distributed firewall,
Ethane, VLAN) and each §5 compromise (user application, end-host,
switch, controller), the harness reports the fraction of attack probes
that succeed after the compromise and how many the attacker *gained*
relative to its pre-compromise position.

Expected shape (matching §5's prose): a controller compromise is total
everywhere; a switch compromise does not affect end-host-enforced
firewalls; under ident++ an application compromise is confined to that
user's privileges while a full host compromise (spoofed daemon) buys
more — the one place where believing end-hosts costs something.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.workloads.comparative import SecurityComparisonScenario


def test_security_matrix(benchmark):
    scenario = SecurityComparisonScenario()
    matrix = benchmark(scenario.build_matrix)

    emit(format_table(matrix.exposure_rows(),
                      title="E9 — post-compromise exposure (fraction of probes that succeed)"))
    emit(format_table(matrix.rows(),
                      title="E9 — probes gained by the attacker (count)"))

    def exposure(arch, needle):
        for row in matrix.exposure_rows():
            if needle in row["scenario"]:
                return row[arch]
        raise AssertionError(needle)

    assert exposure("identpp", "controller") == 1.0
    assert exposure("distributed-firewall", "switch") < exposure("identpp", "switch")
    assert exposure("identpp", "user-application") <= exposure("identpp", "end-host")
    assert exposure("identpp", "end-host") >= exposure("ethane", "end-host")
