#!/usr/bin/env python
"""Docs rot check: every relative link in the markdown tree must resolve.

Scans ``docs/*.md``, ``README.md``, ``ROADMAP.md`` and ``CHANGES.md``
for markdown inline links (``[text](target)``) and fails (exit 1) when
a relative link points at a file that does not exist.  External links
(``http(s)://``) and pure anchors (``#...``) are skipped; a
``path#anchor`` link is checked for the path part only.

Run directly or via ``make docs_check``; CI runs it in the docs job so
documentation cannot drift from the tree it describes.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown inline links: [text](target)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Files whose links are checked.
DOC_FILES = ["README.md", "ROADMAP.md", "CHANGES.md"]


def iter_doc_files() -> list[Path]:
    """Return every markdown file the checker covers."""
    files = [REPO_ROOT / name for name in DOC_FILES if (REPO_ROOT / name).exists()]
    docs = REPO_ROOT / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return files


def check_file(path: Path) -> list[str]:
    """Return a list of broken-link descriptions for one markdown file."""
    problems = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            line = text[: match.start()].count("\n") + 1
            problems.append(
                f"{path.relative_to(REPO_ROOT)}:{line}: broken link -> {target}"
            )
    return problems


def main() -> int:
    files = iter_doc_files()
    if not (REPO_ROOT / "docs").is_dir():
        print("FAIL: docs/ directory does not exist")
        return 1
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    checked = len(files)
    if problems:
        print(f"docs check FAILED: {len(problems)} broken links in {checked} files")
        return 1
    print(f"docs check ok: all relative links resolve across {checked} files")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
