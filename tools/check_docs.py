#!/usr/bin/env python
"""Docs rot check: links must resolve, required sections must exist.

Scans ``docs/*.md``, ``README.md``, ``ROADMAP.md`` and ``CHANGES.md``
for markdown inline links (``[text](target)``) and fails (exit 1) when
a relative link points at a file that does not exist.  External links
(``http(s)://``) and pure anchors (``#...``) are skipped; a
``path#anchor`` link is checked for the path part only.

On top of links, ``REQUIRED_SECTIONS`` pins the headings the rest of
the repo refers to (subsystem docs each PR promises, benchmark gate
tables): deleting or renaming one without updating this list fails the
check, so the architecture/benchmark docs cannot silently lose the
sections other documents and PR acceptance criteria point at.

Run directly or via ``make docs_check``; CI runs it in the docs job so
documentation cannot drift from the tree it describes.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown inline links: [text](target)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Files whose links are checked.
DOC_FILES = ["README.md", "ROADMAP.md", "CHANGES.md"]

#: Headings (exact markdown lines) each doc must keep carrying.
REQUIRED_SECTIONS: dict[str, list[str]] = {
    "docs/ARCHITECTURE.md": [
        "## Paper-section → module map",
        "## Package dependency order",
        "## Life of a punted flow (multi-hop edition)",
        "## Query engine",
        "## Identity plane (push)",
        "## Decision core",
        "## Telemetry plane",
        "## Experiment harness",
    ],
    "docs/BENCHMARKS.md": [
        "## `results` entries",
        "### Cluster control plane (PR 3)",
        "### Enforcement fabric (PR 4)",
        "### Query engine (PR 5)",
        "### Decision core (PR 6)",
        "### Determinism gate (PR 7)",
        "### Telemetry (PR 8)",
        "### Scenario matrix (PR 9)",
        "### Push plane (PR 10)",
        "## `derived` entries",
    ],
    "docs/ANALYSIS.md": [
        "## Running the lint",
        "## Rules",
        "### R1 — no wall-clock reads in simulation code",
        "### R2 — no module-global randomness",
        "### R3 — no silent broad exception handlers",
        "### R4 — event callbacks must not re-enter the loop or block",
        "### R5 — no mutable defaults, no anonymous counters",
        "### R6 — histograms and rate counters must be named",
        "### R7 — ident++ queries must go through the QueryEngine facade",
        "## Suppression",
        "## The runtime sanitizer",
    ],
    "README.md": [
        "## Performance architecture",
        "## State lifecycle",
        "## Cluster control plane",
        "## Query engine",
        "## Determinism and analysis",
    ],
}


def check_required_sections() -> list[str]:
    """Return a problem line for every required heading that is missing."""
    problems = []
    for rel_path, headings in sorted(REQUIRED_SECTIONS.items()):
        path = REPO_ROOT / rel_path
        if not path.exists():
            problems.append(f"{rel_path}: required doc file is missing")
            continue
        lines = {line.strip() for line in path.read_text(encoding="utf-8").splitlines()}
        for heading in headings:
            if heading not in lines:
                problems.append(f"{rel_path}: missing required section {heading!r}")
    return problems


def iter_doc_files() -> list[Path]:
    """Return every markdown file the checker covers."""
    files = [REPO_ROOT / name for name in DOC_FILES if (REPO_ROOT / name).exists()]
    docs = REPO_ROOT / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return files


def check_file(path: Path) -> list[str]:
    """Return a list of broken-link descriptions for one markdown file."""
    problems = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            line = text[: match.start()].count("\n") + 1
            problems.append(
                f"{path.relative_to(REPO_ROOT)}:{line}: broken link -> {target}"
            )
    return problems


def main() -> int:
    files = iter_doc_files()
    if not (REPO_ROOT / "docs").is_dir():
        print("FAIL: docs/ directory does not exist")
        return 1
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    problems.extend(check_required_sections())
    for problem in problems:
        print(problem)
    checked = len(files)
    if problems:
        print(
            f"docs check FAILED: {len(problems)} problems "
            f"(broken links / missing sections) in {checked} files"
        )
        return 1
    print(
        f"docs check ok: all relative links resolve and required sections "
        f"present across {checked} files"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
