"""Repo tooling (docs checker, static-analysis lint) — not shipped code."""
