"""Static-analysis lint encoding the repo's simulation invariants.

The simulator's correctness claims (bit-for-bit reproducible scenarios,
fail-closed control paths, a drainable event loop) rest on invariants no
ordinary linter knows about.  This package encodes them as AST-visitor
rules over the source tree:

========  ==============================================================
Rule      Invariant
========  ==============================================================
``R1``    Simulation code never reads the wall clock (virtual time
          only); workload *wall-timing* files are explicitly allowlisted.
``R2``    All randomness flows through an injected, seeded
          ``random.Random`` — never the module-global ``random`` or an
          unseeded/OS-entropy RNG.
``R3``    No bare ``except:`` / ``except Exception`` unless the handler
          re-raises, routes through the fail-closed audit path, or
          carries a ``# fail-open-ok: <reason>`` justification tag.
``R4``    Event callbacks registered on the scheduler must not re-enter
          ``Simulator.run`` or block on wall time.
``R5``    No mutable default arguments; no anonymous ``Counter()``
          (increments invisible to stats snapshots).
========  ==============================================================

Run via ``python tools/analysis/run_lint.py`` (or ``make lint``); rules,
rationale and the suppression syntax are documented in
``docs/ANALYSIS.md``.  Each rule ships with a good/bad fixture pair under
``tools/analysis/fixtures/`` that the test suite locks the rule's
behaviour to.
"""

from tools.analysis.core import ParsedModule, Violation, analyze_paths, analyze_source
from tools.analysis.rules import ALL_RULES, rules_by_id

__all__ = [
    "ALL_RULES",
    "ParsedModule",
    "Violation",
    "analyze_paths",
    "analyze_source",
    "rules_by_id",
]
