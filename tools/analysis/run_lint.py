#!/usr/bin/env python
"""Repo-invariant lint entry point (``make lint``).

Runs every rule in ``tools/analysis/rules`` over the source tree and
exits non-zero on any unsuppressed violation::

    python tools/analysis/run_lint.py                 # lint src/ + tools/
    python tools/analysis/run_lint.py src/repro/core  # lint a subtree
    python tools/analysis/run_lint.py --disable R4    # switch a rule off
    python tools/analysis/run_lint.py --list-rules    # show the rule set

Per-line suppression uses ``# lint: disable=R1[,R2]`` on the offending
line; rule R3 additionally honours its own ``# fail-open-ok: <reason>``
justification tag.  Rules, rationale and examples are documented in
``docs/ANALYSIS.md``; every rule has good/bad fixtures under
``tools/analysis/fixtures/`` that ``tests/test_analysis_lint.py`` locks
its behaviour to.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.analysis.core import analyze_paths  # noqa: E402
from tools.analysis.rules import ALL_RULES  # noqa: E402

#: What gets linted when no paths are given.  ``tools/`` includes this
#: package itself (the lint must pass its own rules); fixtures are the
#: deliberate violation corpus and are excluded below.
DEFAULT_PATHS = ("src", "tools")

#: Repo-relative prefixes never linted: the fixture corpus *is* the
#: set of violations the tests require the rules to find.
EXCLUDED_PREFIXES = ("tools/analysis/fixtures/",)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src/ and tools/)",
    )
    parser.add_argument(
        "--disable", default="",
        help="comma-separated rule ids to switch off (e.g. R4 or R1,R2)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule set and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}: {rule.title}")
        return 0

    disabled = {part.strip().upper() for part in args.disable.split(",") if part.strip()}
    unknown = disabled - {rule.rule_id for rule in ALL_RULES}
    if unknown:
        print(f"unknown rule id(s) in --disable: {', '.join(sorted(unknown))}")
        return 2
    rules = [rule for rule in ALL_RULES if rule.rule_id not in disabled]

    paths = [(REPO_ROOT / path) if not Path(path).is_absolute() else Path(path)
             for path in args.paths]
    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"no such path: {path}")
        return 2

    violations = [
        violation
        for violation in analyze_paths(paths, rules, root=REPO_ROOT)
        if not violation.path.startswith(EXCLUDED_PREFIXES)
    ]
    for violation in violations:
        print(violation)
    if violations:
        print(
            f"lint FAILED: {len(violations)} violation(s) across "
            f"{len({violation.path for violation in violations})} file(s) "
            f"({len(rules)} rules active)"
        )
        return 1
    print(f"lint ok: {len(rules)} rules, no violations")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
