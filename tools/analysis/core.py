"""Lint engine shared by every rule: parsing, suppression, reporting.

Rules are small classes with a ``rule_id`` and a ``check(module)``
method returning :class:`Violation` objects; this module owns everything
around them — parsing each file once into a :class:`ParsedModule`,
collecting inline suppression comments, walking directory trees, and
ordering the combined report.

Suppression syntax (documented in ``docs/ANALYSIS.md``):

* ``# lint: disable=R2`` on the offending line suppresses that rule
  there (comma-separate several ids: ``# lint: disable=R1,R2``);
* rule R3 additionally honours its own ``# fail-open-ok: <reason>``
  justification tag (on the ``except`` line or the line above);
* whole rules can be switched off per run with ``run_lint.py
  --disable R4``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Protocol, Sequence

#: Inline per-line suppression: ``# lint: disable=R1[,R2...]``
SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"

    @property
    def sort_key(self) -> tuple[str, int, str]:
        return (self.path, self.line, self.rule_id)


@dataclass
class ParsedModule:
    """One source file, parsed once and shared by every rule."""

    path: Path
    #: Repo-relative posix path ("src/repro/core/controller.py") —
    #: what allowlists match against and what reports print.
    rel_path: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def line_text(self, line: int) -> str:
        """Return the 1-indexed source line ('' when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def suppressed_rules(self, line: int) -> set[str]:
        """Return the rule ids inline-suppressed on a 1-indexed line."""
        match = SUPPRESS_RE.search(self.line_text(line))
        if not match:
            return set()
        return {part.strip().upper() for part in match.group(1).split(",") if part.strip()}

    def violation(self, rule_id: str, node: ast.AST | int, message: str) -> Violation:
        """Build a :class:`Violation` at an AST node (or explicit line)."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 0)
        return Violation(rule_id=rule_id, path=self.rel_path, line=line, message=message)


class LintRule(Protocol):
    """What every rule module exports (duck-typed; see ``rules/``)."""

    rule_id: str
    title: str

    def check(self, module: ParsedModule) -> list[Violation]:
        """Return every violation of this rule in one parsed module."""
        ...  # pragma: no cover - protocol stub


def parse_module(path: Path, root: Path) -> ParsedModule:
    """Parse one file into a :class:`ParsedModule` (syntax errors raise)."""
    source = path.read_text(encoding="utf-8")
    return ParsedModule(
        path=path,
        rel_path=path.resolve().relative_to(root.resolve()).as_posix(),
        tree=ast.parse(source, filename=str(path)),
        lines=source.splitlines(),
    )


def analyze_module(module: ParsedModule, rules: Sequence[LintRule]) -> list[Violation]:
    """Run every rule over one parsed module, honouring inline suppression."""
    found: list[Violation] = []
    for rule in rules:
        for violation in rule.check(module):
            if rule.rule_id in module.suppressed_rules(violation.line):
                continue
            found.append(violation)
    return found


def analyze_source(
    source: str,
    rules: Sequence[LintRule],
    *,
    rel_path: str = "<string>",
) -> list[Violation]:
    """Lint a source string (the fixture tests drive rules through this).

    ``rel_path`` stands in for the repo-relative path, so path-gated
    rules (R1's workload allowlist) can be exercised without files.
    """
    module = ParsedModule(
        path=Path(rel_path),
        rel_path=rel_path,
        tree=ast.parse(source),
        lines=source.splitlines(),
    )
    return analyze_module(module, rules)


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def analyze_paths(
    paths: Iterable[Path],
    rules: Sequence[LintRule],
    *,
    root: Path,
) -> list[Violation]:
    """Lint every python file under ``paths``; report repo-relative."""
    violations: list[Violation] = []
    for file_path in iter_python_files(paths):
        module = parse_module(file_path, root)
        violations.extend(analyze_module(module, rules))
    return sorted(violations, key=lambda violation: violation.sort_key)
