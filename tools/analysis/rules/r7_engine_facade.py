"""R7 — queries go through the engine facade, not the raw client.

The :class:`~repro.identpp.engine.QueryEngine` is the single front door
for ident++ queries: it caches, coalesces, serves resident answers on
the push plane, and registers invalidation listeners so cached identity
can never go stale silently.  A call straight into
``QueryClient.query*`` bypasses all of it — the answer is uncached,
uncoalesced, invisible to the push plane's promotion tally, and (worst)
unhooked from invalidation, so the caller can hold a stale identity
forever.

The engine itself is the one legitimate raw caller and is allowlisted
by exact path (as is the comparative NAT-identification experiment,
whose *point* is a raw server-side query with no controller state).
Everything else must go through ``controller.query_engine``.
"""

from __future__ import annotations

import ast

from tools.analysis.core import ParsedModule, Violation

#: The QueryClient query surface (``QueryEngine`` mirrors every name).
QUERY_METHODS = {"query", "query_async", "query_both_ends", "query_both_ends_async"}

#: Receiver names that identify a raw :class:`QueryClient` in this repo
#: (``self.client`` inside the engine, ``controller.query_client``, or a
#: local ``client = QueryClient(...)``).
CLIENT_RECEIVERS = {"client", "query_client"}

#: Exact repo-relative paths allowed to call the raw client.
ENGINE_FACADE_ALLOWLIST = (
    # The facade itself: the engine's misses are the real round-trips.
    "src/repro/identpp/engine.py",
    # Server-side NAT identification measures what a *raw* query learns.
    "src/repro/workloads/comparative.py",
)


class EngineFacadeRule:
    """Flag direct ``QueryClient.query*`` calls that bypass the engine."""

    rule_id = "R7"
    title = "ident++ queries must go through the QueryEngine facade"

    def check(self, module: ParsedModule) -> list[Violation]:
        if module.rel_path.startswith(ENGINE_FACADE_ALLOWLIST):
            return []
        violations: list[Violation] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in QUERY_METHODS:
                continue
            receiver = func.value
            # client.query(...), self.client.query_async(...),
            # controller.query_client.query_both_ends(...)
            if isinstance(receiver, ast.Name):
                receiver_name = receiver.id
            elif isinstance(receiver, ast.Attribute):
                receiver_name = receiver.attr
            else:
                continue
            if receiver_name not in CLIENT_RECEIVERS:
                continue
            violations.append(
                module.violation(
                    self.rule_id,
                    node,
                    f"direct `{receiver_name}.{func.attr}()` bypasses the "
                    f"QueryEngine facade — the answer skips the cache, the "
                    f"resident store, coalescing and invalidation hooks; "
                    f"call `query_engine.{func.attr}()` instead",
                )
            )
        return violations
