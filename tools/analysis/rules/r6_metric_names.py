"""R6 — histograms and rate counters must be named.

The same failure shape R5 catches for ``Counter`` applies to the two
other instruments in :mod:`repro.netsim.statistics`, with an extra
twist each:

* **Histogram** — ``StatsRegistry`` snapshots and benchmark reports key
  on ``histogram.name``, so an anonymous histogram's observations never
  reach ``BENCH_results.json``.  Worse, a reservoir-bounded histogram
  seeds its sampling RNG from the name — every anonymous reservoir
  shares the seed for the empty string, which quietly correlates
  percentile estimates that should be independent.
* **RateCounter** — the telemetry plane builds one windowed rate per
  series and keys the series name off the counter name; an anonymous
  rate counter produces a probe nobody can find or chart.

Both constructors accept the name as the first positional argument, so
the fix is one token: ``Histogram("decision_latency")``.
"""

from __future__ import annotations

import ast

from tools.analysis.core import ParsedModule, Violation

#: Instrument constructors whose first argument is the registry name.
NAMED_INSTRUMENTS = {"Histogram", "RateCounter"}


class MetricNamesRule:
    """Flag unnamed Histogram / RateCounter construction."""

    rule_id = "R6"
    title = "histograms and rate counters must be named"

    def check(self, module: ParsedModule) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                called = func.id
            elif isinstance(func, ast.Attribute):
                called = func.attr
            else:
                continue
            if called not in NAMED_INSTRUMENTS:
                continue
            if node.args or any(
                keyword.arg == "name" for keyword in node.keywords
            ):
                continue
            violations.append(
                module.violation(
                    self.rule_id,
                    node,
                    f"`{called}()` without a name records invisibly — "
                    f"snapshots, telemetry series and BENCH_results.json "
                    f"key on the name (and reservoir RNG seeds from it); "
                    f"pass the name as the first argument",
                )
            )
        return violations
