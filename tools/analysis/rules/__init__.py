"""Rule registry: one module per rule, instantiated once here."""

from tools.analysis.rules.r1_wall_clock import WallClockRule
from tools.analysis.rules.r2_unseeded_random import UnseededRandomRule
from tools.analysis.rules.r3_broad_except import BroadExceptRule
from tools.analysis.rules.r4_blocking_callback import BlockingCallbackRule
from tools.analysis.rules.r5_mutable_defaults import MutableDefaultsRule
from tools.analysis.rules.r6_metric_names import MetricNamesRule
from tools.analysis.rules.r7_engine_facade import EngineFacadeRule

#: Every rule, in id order — the default rule set of ``run_lint.py``.
ALL_RULES = (
    WallClockRule(),
    UnseededRandomRule(),
    BroadExceptRule(),
    BlockingCallbackRule(),
    MutableDefaultsRule(),
    MetricNamesRule(),
    EngineFacadeRule(),
)


def rules_by_id() -> dict[str, object]:
    """Return ``{rule_id: rule}`` for the full rule set."""
    return {rule.rule_id: rule for rule in ALL_RULES}


__all__ = [
    "ALL_RULES",
    "rules_by_id",
    "WallClockRule",
    "UnseededRandomRule",
    "BroadExceptRule",
    "BlockingCallbackRule",
    "MutableDefaultsRule",
    "MetricNamesRule",
    "EngineFacadeRule",
]
