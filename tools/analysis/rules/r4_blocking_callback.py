"""R4 — event callbacks must not re-enter ``Simulator.run`` or block.

``Simulator.run`` rejects re-entrancy at runtime, but only on the
timeline that actually executes the offending callback — a callback
registered on a rarely-taken path can carry the bug for months (PR 6's
``RepeatingEvent`` cancel-inside-callback loop lived exactly there).
This rule finds the shape statically: any callable handed to the
scheduler's registration points (``schedule``, ``schedule_at``,
``call_now``, ``schedule_repeating``, ``Future.add_done_callback``)
whose body calls ``<something>.run(...)`` on a simulator-ish receiver
(``sim``, ``self.sim``, a ``Simulator`` instance) or blocks on wall
time (``time.sleep``).

Resolution is intentionally shallow — lambdas inline, plus same-module
``def``s referenced by name or ``self.<name>`` — which covers how this
codebase registers callbacks without pretending to be a type checker.
"""

from __future__ import annotations

import ast

from tools.analysis.core import ParsedModule, Violation

#: Scheduler registration points → index of the callback argument.
SCHEDULE_CALLBACK_ARG = {
    "schedule": 1,
    "schedule_at": 1,
    "call_now": 0,
    "schedule_repeating": 1,
    "add_done_callback": 0,
}

#: Receiver names that identify a simulator (``sim.run``, ``self.sim.run``).
SIMULATOR_RECEIVERS = {"sim", "simulator"}


def _receiver_is_simulator(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id.lower() in SIMULATOR_RECEIVERS
    if isinstance(node, ast.Attribute):
        return node.attr.lower() in SIMULATOR_RECEIVERS
    return False


def _blocking_calls(body: ast.AST) -> list[ast.Call]:
    """Return the calls inside ``body`` that run the loop or block."""
    offending = []
    for node in ast.walk(body):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr == "run" and _receiver_is_simulator(func.value):
            offending.append(node)
        elif func.attr == "sleep" and isinstance(func.value, ast.Name) \
                and func.value.id == "time":
            offending.append(node)
    return offending


class BlockingCallbackRule:
    """Flag scheduled callbacks that re-enter the loop or block."""

    rule_id = "R4"
    title = "event callbacks must not call Simulator.run or block"

    def check(self, module: ParsedModule) -> list[Violation]:
        # Same-module function definitions by (last) name, for resolving
        # callbacks registered as `self._fire` / `_fire`.
        defs: dict[str, ast.AST] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defs[node.name] = node

        violations: list[Violation] = []
        seen: set[tuple[int, int]] = set()

        def flag(call_site: ast.Call, offender: ast.Call, via: str) -> None:
            key = (offender.lineno, offender.col_offset)
            if key in seen:
                return
            seen.add(key)
            violations.append(
                module.violation(
                    self.rule_id,
                    offender,
                    f"event callback ({via}) calls the event loop or blocks — "
                    f"callbacks run *inside* `Simulator.run`; schedule a "
                    f"follow-up event instead",
                )
            )

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            arg_index = SCHEDULE_CALLBACK_ARG.get(func.attr)
            if arg_index is None or len(node.args) <= arg_index:
                continue
            callback = node.args[arg_index]
            if isinstance(callback, ast.Lambda):
                for offender in _blocking_calls(callback.body):
                    flag(node, offender, "lambda")
                continue
            target_name = None
            if isinstance(callback, ast.Name):
                target_name = callback.id
            elif isinstance(callback, ast.Attribute):
                target_name = callback.attr
            if target_name is not None and target_name in defs:
                for offender in _blocking_calls(defs[target_name]):
                    flag(node, offender, f"def {target_name}")
        return violations
