"""R5 — no mutable default arguments; no anonymous counters.

Two small shapes with outsized blast radius in a long-lived simulation
process:

* **Mutable default arguments** (``def f(x=[])``) — the default is
  created once at ``def`` time and shared across every call *and every
  scenario in the process*, so state leaks between supposedly
  independent runs: exactly the cross-run contamination the determinism
  gates exist to catch.  Use ``None`` and materialise inside.
* **Anonymous counters** — a ``Counter()`` constructed without a name
  increments fine but is invisible to ``StatsRegistry`` snapshots and
  benchmark reports (they key on ``counter.name``), so the measurement
  silently vanishes from ``BENCH_results.json``.  Every counter carries
  a name; registry-managed ones get it from ``registry.counter(name)``.
"""

from __future__ import annotations

import ast

from tools.analysis.core import ParsedModule, Violation

#: Constructor calls that build a fresh mutable container.
MUTABLE_FACTORIES = {"list", "dict", "set"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in MUTABLE_FACTORIES
    return False


class MutableDefaultsRule:
    """Flag mutable defaults and unnamed Counter construction."""

    rule_id = "R5"
    title = "no mutable default args; counters must be named/registered"

    def check(self, module: ParsedModule) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                defaults = list(node.args.defaults) + [
                    default for default in node.args.kw_defaults if default is not None
                ]
                for default in defaults:
                    if _is_mutable_default(default):
                        name = getattr(node, "name", "<lambda>")
                        violations.append(
                            module.violation(
                                self.rule_id,
                                default,
                                f"mutable default argument in `{name}` is shared "
                                f"across calls and scenarios — default to None "
                                f"and materialise inside",
                            )
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                is_counter = (
                    isinstance(func, ast.Name) and func.id == "Counter"
                ) or (
                    isinstance(func, ast.Attribute) and func.attr == "Counter"
                )
                if is_counter and not node.args and not any(
                    keyword.arg == "name" for keyword in node.keywords
                ):
                    violations.append(
                        module.violation(
                            self.rule_id,
                            node,
                            "`Counter()` without a name increments invisibly — "
                            "snapshots and BENCH_results.json key on the name; "
                            "construct it named (or via registry.counter(name))",
                        )
                    )
        return violations
