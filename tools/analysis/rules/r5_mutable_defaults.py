"""R5 — no mutable default arguments; no anonymous counters.

Two small shapes with outsized blast radius in a long-lived simulation
process:

* **Mutable default arguments** (``def f(x=[])``) — the default is
  created once at ``def`` time and shared across every call *and every
  scenario in the process*, so state leaks between supposedly
  independent runs: exactly the cross-run contamination the determinism
  gates exist to catch.  Use ``None`` and materialise inside.
* **Anonymous counters** — a ``Counter()`` constructed without a name
  increments fine but is invisible to ``StatsRegistry`` snapshots and
  benchmark reports (they key on ``counter.name``), so the measurement
  silently vanishes from ``BENCH_results.json``.  Every counter carries
  a name; registry-managed ones get it from ``registry.counter(name)``.
* **Dataclass mutable defaults** — the same trap in dataclass clothing:
  ``field(default=[])`` or ``field(default_factory=list())`` evaluates
  the container once at class-definition time, so every instance shares
  it (``default_factory`` wants the *callable* ``list``, not the result
  of calling it).  A bare ``x: list = []`` class default is the shape
  the ``Experiment`` exemplar shipped with.  Use
  ``field(default_factory=list)``.
"""

from __future__ import annotations

import ast

from tools.analysis.core import ParsedModule, Violation

#: Constructor calls that build a fresh mutable container.
MUTABLE_FACTORIES = {"list", "dict", "set"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in MUTABLE_FACTORIES
    return False


def _is_field_call(node: ast.expr) -> bool:
    """True for ``field(...)`` / ``dataclasses.field(...)`` (any alias of field)."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in {"field", "dataclass_field"}
    return isinstance(func, ast.Attribute) and func.attr == "field"


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


class MutableDefaultsRule:
    """Flag mutable defaults and unnamed Counter construction."""

    rule_id = "R5"
    title = "no mutable default args; counters must be named/registered"

    def check(self, module: ParsedModule) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and _is_dataclass(node):
                violations.extend(self._check_dataclass(module, node))
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                defaults = list(node.args.defaults) + [
                    default for default in node.args.kw_defaults if default is not None
                ]
                for default in defaults:
                    if _is_mutable_default(default):
                        name = getattr(node, "name", "<lambda>")
                        violations.append(
                            module.violation(
                                self.rule_id,
                                default,
                                f"mutable default argument in `{name}` is shared "
                                f"across calls and scenarios — default to None "
                                f"and materialise inside",
                            )
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                is_counter = (
                    isinstance(func, ast.Name) and func.id == "Counter"
                ) or (
                    isinstance(func, ast.Attribute) and func.attr == "Counter"
                )
                if is_counter and not node.args and not any(
                    keyword.arg == "name" for keyword in node.keywords
                ):
                    violations.append(
                        module.violation(
                            self.rule_id,
                            node,
                            "`Counter()` without a name increments invisibly — "
                            "snapshots and BENCH_results.json key on the name; "
                            "construct it named (or via registry.counter(name))",
                        )
                    )
        return violations

    def _check_dataclass(
        self, module: ParsedModule, node: ast.ClassDef
    ) -> list[Violation]:
        violations: list[Violation] = []
        for statement in node.body:
            value = getattr(statement, "value", None)
            if value is None:
                continue
            if _is_field_call(value):
                for keyword in value.keywords:
                    if keyword.arg == "default" and _is_mutable_default(keyword.value):
                        violations.append(
                            module.violation(
                                self.rule_id,
                                keyword.value,
                                f"field(default=...) with a mutable container in "
                                f"`{node.name}` is shared by every instance — use "
                                f"field(default_factory=...)",
                            )
                        )
                    elif keyword.arg == "default_factory" and isinstance(
                        keyword.value, (ast.Call, ast.List, ast.Dict, ast.Set)
                    ):
                        violations.append(
                            module.violation(
                                self.rule_id,
                                keyword.value,
                                f"default_factory in `{node.name}` is given an "
                                f"already-built container, not a callable — the one "
                                f"container is shared by every instance; pass the "
                                f"factory itself (e.g. list, not list())",
                            )
                        )
            elif _is_mutable_default(value):
                violations.append(
                    module.violation(
                        self.rule_id,
                        value,
                        f"mutable class-level default in dataclass `{node.name}` "
                        f"is shared by every instance — use "
                        f"field(default_factory=...)",
                    )
                )
        return violations
