"""R2 — all randomness flows through an injected, seeded ``random.Random``.

A call on the module-global ``random`` (``random.choice(...)``) draws
from interpreter-global state that any import or library call can
perturb, and an unseeded ``random.Random()`` (or ``SystemRandom``)
draws OS entropy — either way two runs of the same scenario diverge.
The repo's contract is that every component takes a seed (or a
``random.Random`` instance) from its caller, so the scenario's one seed
reaches every draw and gets recorded next to the results.

Flagged:

* any call through the module object except seeded construction —
  ``random.random()``, ``random.choice()``, ``random.seed()``, ...;
* ``random.Random()`` with no arguments (OS-entropy seeding);
* ``random.SystemRandom(...)`` (never reproducible);
* ``from random import choice`` and friends (a module-global call with
  the module name laundered away) — importing ``Random`` itself is fine.
"""

from __future__ import annotations

import ast

from tools.analysis.core import ParsedModule, Violation

#: Names importable from ``random`` that are allowed: the class itself
#: (callers must seed it) — everything else is global-RNG surface.
ALLOWED_RANDOM_IMPORTS = {"Random"}


class UnseededRandomRule:
    """Flag module-global and unseeded randomness."""

    rule_id = "R2"
    title = "randomness must come from a seeded random.Random"

    def check(self, module: ParsedModule) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in ALLOWED_RANDOM_IMPORTS:
                        violations.append(
                            module.violation(
                                self.rule_id,
                                node,
                                f"`from random import {alias.name}` exposes the "
                                f"module-global RNG — import `random.Random` and "
                                f"seed an instance instead",
                            )
                        )
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)):
                continue
            if func.value.id != "random":
                continue
            if func.attr == "Random":
                if not node.args and not node.keywords:
                    violations.append(
                        module.violation(
                            self.rule_id,
                            node,
                            "`random.Random()` without a seed draws OS entropy — "
                            "pass a seed so the run is reproducible",
                        )
                    )
                continue
            if func.attr == "SystemRandom":
                violations.append(
                    module.violation(
                        self.rule_id,
                        node,
                        "`random.SystemRandom` is never reproducible — "
                        "use a seeded `random.Random`",
                    )
                )
                continue
            violations.append(
                module.violation(
                    self.rule_id,
                    node,
                    f"module-global `random.{func.attr}()` — draw from an "
                    f"injected, seeded `random.Random` instance instead",
                )
            )
        return violations
