"""R3 — broad exception handlers must fail closed or justify failing open.

PR 5's round-trip bug is the canonical case: a ``try/except Exception``
around the daemon query swallowed *every* error — including programming
errors — and reported the query as succeeded, silently turning a broken
controller into an allow-all one.  The repo invariant is that a bare
``except:`` / ``except Exception`` / ``except BaseException`` handler is
only acceptable when it

* **re-raises** (wraps into a typed library error), or
* **routes through the fail-closed path** — calls something on the
  fail-closed/audit surface (``_fail_closed``, ``fail_closed``,
  ``audit``) so the error becomes an audited drop decision, or
* **declares itself** with a ``# fail-open-ok: <reason>`` tag on the
  ``except`` line (or the line above), making the fail-open choice a
  reviewed, grep-able decision instead of an accident.

Everything else should narrow to the concrete exception type
(``except TopologyError``) so unexpected errors propagate.
"""

from __future__ import annotations

import ast

from tools.analysis.core import ParsedModule, Violation

#: The justification tag (anchored as a comment, reason required).
FAIL_OPEN_TAG = "# fail-open-ok:"

#: Exception names considered "broad".
BROAD_NAMES = {"Exception", "BaseException"}

#: Substrings of call targets that mark the fail-closed audit surface.
FAIL_CLOSED_MARKERS = ("fail_closed", "fail-closed", "audit")


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """Return True for ``except:``, ``except Exception``, tuples thereof."""
    node = handler.type
    if node is None:
        return True
    names = []
    if isinstance(node, ast.Tuple):
        names = [e for e in node.elts]
    else:
        names = [node]
    for name in names:
        if isinstance(name, ast.Name) and name.id in BROAD_NAMES:
            return True
        if isinstance(name, ast.Attribute) and name.attr in BROAD_NAMES:
            return True
    return False


def _routes_fail_closed(handler: ast.ExceptHandler) -> bool:
    """Return True when the handler re-raises or hits the audit surface."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            target = node.func
            dotted = ""
            while isinstance(target, ast.Attribute):
                dotted = f".{target.attr}{dotted}"
                target = target.value
            if isinstance(target, ast.Name):
                dotted = f"{target.id}{dotted}"
            lowered = dotted.lower()
            if any(marker in lowered for marker in FAIL_CLOSED_MARKERS):
                return True
    return False


def _has_fail_open_tag(module: ParsedModule, handler: ast.ExceptHandler) -> bool:
    """Return True when the except line (or the one above) carries the tag.

    The reason is mandatory: a bare ``# fail-open-ok:`` with nothing
    after the colon does not count.
    """
    for line in (handler.lineno, handler.lineno - 1):
        text = module.line_text(line)
        index = text.find(FAIL_OPEN_TAG)
        if index != -1 and text[index + len(FAIL_OPEN_TAG):].strip():
            return True
    return False


class BroadExceptRule:
    """Flag broad handlers that neither fail closed nor justify fail-open."""

    rule_id = "R3"
    title = "broad except must fail closed or carry a fail-open-ok tag"

    def check(self, module: ParsedModule) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _routes_fail_closed(node):
                continue
            if _has_fail_open_tag(module, node):
                continue
            caught = "bare except" if node.type is None else "except Exception"
            violations.append(
                module.violation(
                    self.rule_id,
                    node,
                    f"{caught} swallows unexpected errors — narrow to the "
                    f"concrete type, route through the fail-closed audit "
                    f"path, or tag `{FAIL_OPEN_TAG} <reason>`",
                )
            )
        return violations
