"""R1 — simulation code must not read the wall clock.

Virtual time is the whole point of the discrete-event simulator: every
timestamp a scenario observes must come from ``Simulator.now`` so two
runs of the same scenario are bit-for-bit identical.  One stray
``time.time()`` (or ``datetime.now()``) inside simulation logic makes
results depend on the host's load and clock, which no test can catch
reliably — but an AST scan can.

Workload drivers legitimately measure *wall* time (how long the bench
took to run, reported as ``wall_seconds``); those files are allowlisted
explicitly in :data:`WALL_TIMING_ALLOWLIST` rather than exempted by
pattern, so a new module cannot silently opt out.
"""

from __future__ import annotations

import ast

from tools.analysis.core import ParsedModule, Violation

#: Attribute names that read the host clock when called on the ``time``,
#: ``datetime`` or ``date`` modules/classes.
WALL_CLOCK_ATTRS = {
    "time": {"time", "monotonic", "perf_counter", "process_time",
             "time_ns", "monotonic_ns", "perf_counter_ns", "process_time_ns"},
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}

#: Repo-relative path prefixes allowed to measure wall time (bench
#: drivers reporting how long the *host* took, never simulation logic).
WALL_TIMING_ALLOWLIST = (
    "src/repro/workloads/",
    "benchmarks/",
)


class WallClockRule:
    """Flag wall-clock reads outside the explicit wall-timing allowlist."""

    rule_id = "R1"
    title = "no wall-clock reads in simulation code"

    def check(self, module: ParsedModule) -> list[Violation]:
        if module.rel_path.startswith(WALL_TIMING_ALLOWLIST):
            return []
        violations: list[Violation] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            # time.time(), datetime.now(), datetime.datetime.now(), ...
            base_name = None
            if isinstance(base, ast.Name):
                base_name = base.id
            elif isinstance(base, ast.Attribute):
                base_name = base.attr
            if base_name in WALL_CLOCK_ATTRS and func.attr in WALL_CLOCK_ATTRS[base_name]:
                violations.append(
                    module.violation(
                        self.rule_id,
                        node,
                        f"wall-clock read `{base_name}.{func.attr}()` in simulation "
                        f"code — use the simulator's virtual clock (`sim.now`); "
                        f"workload wall-timing belongs in an allowlisted module",
                    )
                )
        return violations
