"""R3 fixture (bad): broad exception handlers that fail open silently."""


def lookup(table, key):
    try:
        return table[key]
    except Exception:
        return None


def forward(switch, packet):
    try:
        switch.enqueue(packet)
    except:  # noqa: E722
        pass


def verify(sig, payload):
    try:
        return sig.check(payload)
    except (ValueError, Exception):
        return True
