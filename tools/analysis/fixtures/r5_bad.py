"""R5 fixture (bad): mutable defaults and anonymous (unregistered) counters."""

from repro.netsim.statistics import Counter


def collect(samples=[]):
    samples.append(1)
    return samples


def configure(overrides={}, tags=set()):
    return overrides, tags


def tally(events, seen=list()):
    seen.extend(events)
    return seen


def make_counter():
    # Anonymous counter: increments are invisible to StatsRegistry
    # snapshots, so the work it tallies never reaches BENCH reports.
    return Counter()


# --- dataclass mutable-default misuse (the Experiment-exemplar trap) ---

from dataclasses import dataclass, field


@dataclass
class BadExperiment:
    # A bare mutable class default: one list shared by every instance.
    scenarios_list: list = []
    # default= evaluates the container once at class-definition time.
    tags: dict = field(default=dict())
    # default_factory wants the callable, not the result of calling it:
    # list() here builds ONE list that every instance then shares.
    repeats: list = field(default_factory=list())
