"""R5 fixture (bad): mutable defaults and anonymous (unregistered) counters."""

from repro.netsim.statistics import Counter


def collect(samples=[]):
    samples.append(1)
    return samples


def configure(overrides={}, tags=set()):
    return overrides, tags


def tally(events, seen=list()):
    seen.extend(events)
    return seen


def make_counter():
    # Anonymous counter: increments are invisible to StatsRegistry
    # snapshots, so the work it tallies never reaches BENCH reports.
    return Counter()
