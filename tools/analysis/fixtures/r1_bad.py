"""R1 fixture (bad): simulation code reading the host clock."""

import time
from datetime import datetime


def expire_stale(entries):
    # Wall-clock read inside simulation logic: two runs see different
    # nows, so expiry decisions (and the event trace) diverge.
    now = time.time()
    started = time.perf_counter()
    stamp = datetime.now()
    return [entry for entry in entries if entry.deadline > now], started, stamp
