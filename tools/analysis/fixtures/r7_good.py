"""R7 fixture (good): every query goes through the engine facade."""


class FacadeController:
    def __init__(self, query_engine):
        self.query_engine = query_engine

    def decide(self, flow, switch):
        # The engine caches, coalesces, serves resident answers and
        # hooks invalidation — the one legitimate query path.
        src, dst = self.query_engine.query_both_ends(flow, from_node=switch)
        return src, dst

    def decide_async(self, flow):
        return self.query_engine.query_async(flow, "src")

    def single_end(self, flow):
        return self.query_engine.query(flow, "dst")
