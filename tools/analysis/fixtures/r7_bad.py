"""R7 fixture (bad): raw QueryClient calls that bypass the engine."""

from repro.identpp.client import QueryClient


def raw_local_client(topology, flow):
    client = QueryClient(topology)
    # Uncached, uncoalesced, no invalidation hook: a stale identity
    # served from here can never be dropped.
    return client.query(flow, "dst")


class SidechannelController:
    def __init__(self, query_client):
        self.query_client = query_client
        self.client = query_client

    def decide(self, flow, switch):
        src, dst = self.query_client.query_both_ends(flow, from_node=switch)
        return src, dst

    def decide_async(self, flow):
        return self.client.query_async(flow, "src")
