"""R6 fixture (good): every histogram and rate counter carries a name."""

from repro.netsim.statistics import Histogram, RateCounter, StatsRegistry


def make_latency_histogram():
    return Histogram("decision_latency")


def make_bounded_histogram():
    return Histogram("punt_latency", reservoir=256)


def make_rate():
    return RateCounter("controller.punt_rate", 0.25)


def make_keyword_named():
    return Histogram(name="query_latency"), RateCounter(name="hits_per_sec")


def make_registered(registry: StatsRegistry):
    return registry.histogram("setup_latency")
