"""R1 fixture (good): timestamps come from the simulator's virtual clock."""


def expire_stale(sim, entries):
    now = sim.now
    return [entry for entry in entries if entry.deadline > now]


def schedule_sweep(sim, service):
    sim.schedule_repeating(1.0, service.sweep, label="lifecycle")
