"""R2 fixture (good): seeded, injected RNG threaded through the component."""

import random
from random import Random
from typing import Optional


class JitterSource:
    def __init__(self, seed: int = 0, rng: Optional[random.Random] = None) -> None:
        self.seed = None if rng is not None else seed
        self._rng = rng if rng is not None else random.Random(seed)

    def draw(self) -> float:
        return self._rng.random() * 0.5


def derived_rng(owner: str, seed: int) -> Random:
    return Random(f"{owner}|{seed}")
