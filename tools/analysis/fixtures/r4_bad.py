"""R4 fixture (bad): event callbacks that re-enter the simulator or block."""

import time


def drain(sim, queue):
    def on_fire():
        # Re-entering Simulator.run from inside a callback corrupts the
        # event loop (the outer run is already draining the heap).
        sim.run()

    sim.schedule(1.0, on_fire, label="drain")


def poll(sim, daemon):
    sim.schedule(0.5, lambda: time.sleep(0.1), label="poll")


class Sweeper:
    def __init__(self, sim):
        self.sim = sim

    def _tick(self):
        time.sleep(0.01)
        self.sim.run(until=self.sim.now + 1.0)

    def start(self):
        self.sim.schedule_repeating(1.0, self._tick, label="sweep")
