"""R2 fixture (bad): module-global and unseeded randomness."""

import random
from random import choice  # module-global RNG laundered through an import


def draw_jitter():
    # Module-global draws: any other import or library call perturbs the
    # shared state, so two runs of the same scenario diverge.
    return random.random() * 0.5


def pick_host(hosts):
    return choice(hosts)


def make_rng():
    # Unseeded: draws OS entropy, never reproducible.
    return random.Random()


def reseed_global():
    random.seed(42)
