"""R3 fixture (good): narrow handlers, fail-closed routing, justified tags."""


class TopologyError(Exception):
    pass


def lookup(table, key):
    try:
        return table[key]
    except KeyError:
        return None


def forward(controller, switch, packet):
    try:
        switch.enqueue(packet)
    except Exception:
        # Broad, but routed through the fail-closed audit path: the
        # packet is dropped and the drop is recorded.
        controller.audit.record_fail_closed("enqueue", packet)
        raise


def best_effort_metrics(sink, sample):
    try:
        sink.push(sample)
    except Exception:  # fail-open-ok: metrics export is advisory; losing a sample never affects decisions
        pass


def degrade(cache, key):
    try:
        return cache[key]
    # fail-open-ok: cache miss fallback recomputes from authoritative state
    except Exception:
        return None
