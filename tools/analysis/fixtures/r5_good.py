"""R5 fixture (good): None-sentinel defaults and registered counters."""

from typing import Optional

from repro.netsim.statistics import Counter


def collect(samples: Optional[list] = None):
    if samples is None:
        samples = []
    samples.append(1)
    return samples


def configure(overrides: Optional[dict] = None, tags: Optional[set] = None):
    return overrides or {}, tags or set()


def make_counter():
    return Counter(name="queries_served")


# --- dataclass defaults done right: factories, not instances ---

from dataclasses import dataclass, field


@dataclass
class GoodExperiment:
    name: str = "baseline"
    scenarios_list: list = field(default_factory=list)
    tags: dict = field(default_factory=dict)
    keys: tuple = field(default_factory=lambda: ("a", "b"))
