"""R6 fixture (bad): anonymous histograms and rate counters."""

from repro.netsim import statistics
from repro.netsim.statistics import Histogram, RateCounter


def make_latency_histogram():
    # Anonymous histogram: observations never reach StatsRegistry
    # snapshots or BENCH reports, and a reservoir would seed its RNG
    # from the empty string.
    return Histogram()


def make_rate():
    # Anonymous rate counter: the telemetry series it would back is
    # unnameable, so the probe can never be charted.
    return RateCounter()


def make_qualified():
    return statistics.Histogram()
