"""R4 fixture (good): callbacks only schedule further work, never block."""


def drain(sim, queue):
    def on_fire():
        item = queue.pop()
        if queue:
            sim.schedule(1.0, on_fire, label="drain")
        return item

    sim.schedule(1.0, on_fire, label="drain")


class Sweeper:
    def __init__(self, sim):
        self.sim = sim

    def _tick(self):
        self.sim.schedule(0.5, self._flush, label="flush")

    def _flush(self):
        pass

    def start(self):
        self.sim.schedule_repeating(1.0, self._tick, label="sweep")
