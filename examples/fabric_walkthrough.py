"""Fabric walkthrough: path-wide enforcement on a spine-leaf data plane.

Builds a 2-spine / 4-leaf fabric, punts one flow through the full §3.4
pipeline, and shows what "install along the path" actually means on a
multi-hop network: one punt at the ingress leaf, forward + reverse
entries on *every* switch of the path, and — after one hop's idle
timeout fires — a FlowRemoved-driven unwind that tears the rest of the
path down as a unit.

Run with::

    python examples/fabric_walkthrough.py
"""

from repro import HostSpec, IdentPPNetwork


def print_flow_tables(net, title):
    print(f"\n-- flow tables: {title} --")
    for name in sorted(net.switches):
        switch = net.switches[name]
        if not len(switch.flow_table):
            print(f"  {name:<16} (empty)")
            continue
        for entry in switch.flow_table.entries():
            action = entry.actions[0].__class__.__name__ if entry.actions else "Drop"
            print(f"  {name:<16} {entry.match}  -> {action}  cookie={entry.cookie}")


def main() -> None:
    net = IdentPPNetwork("fabric-demo", policy_default_action="block")
    fabric = net.add_spine_leaf_fabric(spines=2, leaves=4, prefix="fab")
    print("fabric:", fabric.describe())

    net.add_host(
        HostSpec(name="client", ip="192.168.0.10", users={"alice": ("users", "staff")}),
        switch=fabric.leaves[0],
    )
    server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=fabric.leaves[3])
    server.run_server("httpd", "root", 80)

    net.set_policy({
        "00-policy.control": (
            "block all\n"
            "pass from any to any port 80 keep state\n"
        ),
    })

    print("\n== one approved flow across the fabric ==")
    result = net.send_flow("client", "http", "alice", "192.168.1.1", 80)
    print(f"verdict: {result.decision_action}   delivered: {result.delivered}")
    punts = {n: int(s.punts.value) for n, s in net.switches.items() if s.punts.value}
    print(f"punts (exactly one, at the ingress leaf): {punts}")
    path = net.topology.shortest_path(net.host("client"), server)
    print("path:", " -> ".join(node.name for node in path))
    print_flow_tables(net, "after path-wide install (3 hops x fwd+rev)")

    print("\n== idle timeout on ONE hop unwinds the whole path ==")
    sim = net.topology.sim
    sim.schedule_at(sim.now + net.controller.config.idle_timeout + 1.0, lambda: None)
    net.run()
    swept = fabric.leaves[0].sweep_expired(sim.now)
    print(f"ingress leaf swept {swept} expired entries -> FlowRemoved to controller")
    net.run()
    print(f"controller path unwinds: {net.controller.path_unwinds}")
    print_flow_tables(net, "after FlowRemoved-driven unwind")

    print("\n== a denial burns exactly one table entry (drop at first hop) ==")
    result = net.send_flow("client", "telnet", "alice", "192.168.1.1", 23)
    print(f"verdict: {result.decision_action}   delivered: {result.delivered}")
    print_flow_tables(net, "after the denial")


if __name__ == "__main__":
    main()
