"""Quickstart: an ident++-protected OpenFlow network in ~30 lines.

Builds a client, a server and one switch, loads a two-rule PF+=2 policy
("only approved applications may talk"), and sends two flows through the
full Figure 1 pipeline: switch punt → ident++ queries to both end-hosts →
policy decision → flow entries installed → packet delivered (or not).

Run with::

    python examples/quickstart.py
"""

from repro import HostSpec, IdentPPNetwork


def main() -> None:
    net = IdentPPNetwork("quickstart")
    switch = net.add_switch("sw1")

    net.add_host(
        HostSpec(name="client", ip="192.168.0.10", users={"alice": ("users", "staff")}),
        switch=switch,
    )
    server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=switch)
    server.run_server("httpd", "root", 80)

    # PF+=2 policy: default deny, then allow flows whose *source application*
    # (reported by the ident++ daemon, not guessed from port numbers) is
    # approved.  Port numbers never appear in the policy.
    net.set_policy({
        "00-policy.control": (
            'approved = "{ http ssh }"\n'
            "block all\n"
            "pass from any to any with member(@src[name], $approved) keep state\n"
        ),
    })

    print("== approved application (firefox/http) ==")
    result = net.send_flow("client", "http", "alice", "192.168.1.1", 80)
    print(f"verdict: {result.decision_action}   delivered: {result.delivered}")
    print(f"deciding rule: {result.decision_rule}")

    print("\n== unapproved application (telnet), same user, same hosts ==")
    result = net.send_flow("client", "telnet", "alice", "192.168.1.1", 80)
    print(f"verdict: {result.decision_action}   delivered: {result.delivered}")

    print("\n== controller audit log ==")
    for record in net.controller.audit:
        print(f"  {record.flow}  ->  {record.action:5s}  "
              f"(src app={record.src_keys.get('name')}, user={record.src_keys.get('userID')})")

    summary = net.controller.summary()
    print(f"\nflow-setup latency (mean): {summary['flow_setup_latency']['mean'] * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
