"""Figures 4 and 5: delegation to users, with revocation.

A researcher signs per-application rules ("research apps only talk to
each other") with her own key; the administrator's policy defers to
those rules via ``allowed()`` + ``verify()`` without ever having to open
ports by hand.  The example then shows the administrator's side of the
bargain: every delegated decision is audited, and the delegation can be
revoked, which tears down the flow entries it created.

Run with::

    python examples/research_delegation.py
"""

from repro.analysis.report import format_table
from repro.workloads.scenarios import ResearchDelegationScenario


def main() -> None:
    scenario = ResearchDelegationScenario()
    results = scenario.run()

    rows = [
        {"case": r.label, "expected": r.expected_action, "observed": r.actual_action,
         "correct": r.correct}
        for r in results
    ]
    print(format_table(rows, title="Figures 4-5 — research delegation flow matrix"))

    controller = scenario.net.controller
    delegated = controller.audit.delegated_decisions()
    print("\nDelegated decisions recorded in the audit log:")
    for record in delegated:
        print(f"  {record.flow} -> {record.action} "
              f"(functions: {', '.join(record.delegation_functions)}; "
              f"src user: {record.src_keys.get('userID')})")

    # The administrator registers the researcher's key as an explicit grant so
    # its use is attributable — and revocable.
    controller.delegations.grant("research-grant", scenario.researcher_signer)
    for record in delegated:
        controller.delegations.record_use("research-grant", record.cookie)

    removed = controller.revoke_delegation("research-grant")
    print(f"\nRevoked the research delegation: {removed} cached flow entries removed;")
    print("the researcher's key no longer verifies and new flows fall back to 'block all'.")


if __name__ == "__main__":
    main()
