"""Figure 8: user/application-specific rules stopping a Conficker-style worm.

The policy admits the Windows ``Server`` service (TCP 445) only to
``system`` users inside the LAN, and only when the destination host
reports the MS08-067 patch in its ident++ response — information a
port-based firewall simply does not have.

Run with::

    python examples/conficker_mitigation.py
"""

from repro.analysis.report import format_table
from repro.baselines.vanilla_firewall import VanillaFirewall, enterprise_default_rules
from repro.identpp.flowspec import FlowSpec
from repro.workloads.scenarios import ConfickerScenario


def main() -> None:
    scenario = ConfickerScenario()
    results = scenario.run()
    rows = [
        {"case": r.label, "expected": r.expected_action, "observed": r.actual_action,
         "correct": r.correct}
        for r in results
    ]
    print(format_table(rows, title="Figure 8 — Server-service access control (ident++)"))

    # What a port firewall would have done with the same probes: it cannot see
    # users or patch levels, so its best effort is an address/port rule.
    firewall = VanillaFirewall(enterprise_default_rules(
        internal="192.168.0.0/16", server_subnet="192.168.1.0/24"))
    firewall.allow(src="192.168.0.0/16", dst="192.168.1.0/24", proto="tcp", dst_port=445)
    comparison = []
    for case, result in zip(scenario.cases, results):
        probe = FlowSpec.tcp(scenario.net.host(case.src_host).ip, case.dst_ip, 40000, case.dst_port)
        comparison.append({
            "case": case.label,
            "ident++": result.actual_action,
            "port firewall": firewall.decide(probe),
        })
    print()
    print(format_table(comparison, title="Same probes under a port-based firewall"))
    print("\nThe port firewall must either open 445 to the whole LAN (above: infected LAN "
          "hosts reach unpatched servers) or close it for the administrators too.")


if __name__ == "__main__":
    main()
