"""§5: what an attacker gains by compromising each component, per architecture.

Prints the compromise-impact matrix comparing ident++ with a vanilla
port firewall, a distributed (end-host-enforced) firewall, an
Ethane-style controller and VLAN partitioning.

Run with::

    python examples/security_comparison.py
"""

from repro.analysis.report import format_table
from repro.workloads.comparative import SecurityComparisonScenario


def main() -> None:
    scenario = SecurityComparisonScenario()

    print("Attack probes (all launched from the attacker's foothold on client c1):")
    for probe in scenario.probes:
        print(f"  - {probe.description}  ({probe.flow})")
    print()

    matrix = scenario.build_matrix()
    print(format_table(
        matrix.exposure_rows(),
        title="Post-compromise exposure: fraction of probes that succeed",
    ))
    print()
    print(format_table(
        matrix.rows(),
        title="Probes gained by the attacker relative to its pre-compromise position",
    ))
    print(
        "\nReading the matrix the way §5 does: a compromised controller is total loss\n"
        "everywhere; a compromised switch does not affect end-host-enforced firewalls;\n"
        "under ident++ a compromised application is confined to that user's privileges,\n"
        "while a fully compromised end-host can lie to the controller — the price of\n"
        "trusting end-host information, and exactly the §5.3 caveat."
    )


if __name__ == "__main__":
    main()
