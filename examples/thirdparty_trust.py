"""Figures 6 and 7: trust delegation to a third party.

"Secur", a security company, publishes signed firewall rules for the
thunderbird mail client.  The administrator's whole policy is a single
rule: run whatever Secur has approved, as long as the flow obeys Secur's
rules.  Unsigned applications and tampered rule files are rejected by
``verify()``.

Run with::

    python examples/thirdparty_trust.py
"""

from repro.analysis.report import format_table
from repro.workloads.scenarios import ThirdPartyTrustScenario


def main() -> None:
    scenario = ThirdPartyTrustScenario()
    results = scenario.run()
    rows = [
        {"case": r.label, "expected": r.expected_action, "observed": r.actual_action,
         "correct": r.correct}
        for r in results
    ]
    print(format_table(rows, title="Figures 6-7 — Secur-approved applications"))

    delegated = scenario.net.controller.audit.delegated_decisions()
    print(f"\n{len(delegated)} decision(s) relied on Secur's signed rules; "
          f"Secur's key fingerprint: {scenario.secur.public_key.fingerprint()}")


if __name__ == "__main__":
    main()
