"""Figures 2 and 3: the Skype policy, end to end.

Loads the paper's three controller configuration files
(00-local-header / 50-skype / 99-local-footer) and the skype ``@app``
daemon configuration, then drives the full flow matrix through the
simulated OpenFlow network: approved apps pass, skype may talk to skype
but not to the protected server, old skype versions are blocked, and
everything else hits the default deny.

Run with::

    python examples/skype_policy.py
"""

from repro.analysis.report import format_table
from repro.workloads.scenarios import SkypeScenario


def main() -> None:
    scenario = SkypeScenario()

    print("Controller configuration files (concatenated alphabetically):")
    for name in scenario.net.controller.policy.loader.file_names():
        print(f"  - {name}")
    print()

    results = scenario.run()
    rows = [
        {
            "case": result.label,
            "expected": result.expected_action,
            "observed": result.actual_action,
            "delivered": result.delivered,
            "as the paper describes": "yes" if result.correct else "NO",
        }
        for result in results
    ]
    print(format_table(rows, title="Figure 2 / Figure 3 — Skype policy flow matrix"))

    mismatches = scenario.mismatches()
    print(f"\n{len(results) - len(mismatches)}/{len(results)} cases behave as the paper describes.")


if __name__ == "__main__":
    main()
