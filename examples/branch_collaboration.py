"""§4 "Network Collaboration": two branches over a bottleneck link.

Branch B's controller augments ident++ responses for flows headed its
way with what it is not willing to accept; branch A's policy then drops
those flows *before* they cross the WAN bottleneck.  The example prints
the bottleneck traffic and remote controller load with and without the
collaboration.

Run with::

    python examples/branch_collaboration.py
"""

from repro.analysis.report import format_table
from repro.workloads.comparative import CollaborationScenario


def main() -> None:
    rows = []
    for collaborate in (False, True):
        result = CollaborationScenario(
            collaborate=collaborate, flows=24, unwanted_fraction=0.5, packets_per_flow=4
        ).run()
        rows.append({
            "collaboration": "on" if collaborate else "off",
            "flows sent": result.flows_sent,
            "unwanted flows": result.unwanted_flows,
            "bottleneck bytes": result.bottleneck_bytes,
            "bottleneck packets": result.bottleneck_packets,
            "wanted delivered": result.wanted_delivered,
            "remote controller packet-ins": result.remote_packet_ins,
        })
    print(format_table(rows, title="Network collaboration across the branch bottleneck"))

    saved = 1.0 - rows[1]["bottleneck bytes"] / rows[0]["bottleneck bytes"]
    print(f"\nCollaboration keeps the unwanted half of the traffic off the WAN link: "
          f"{saved:.0%} of the bottleneck bytes saved, with wanted traffic untouched.")


if __name__ == "__main__":
    main()
