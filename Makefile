PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-experiments soak

test:
	$(PYTHON) -m pytest -q

bench:
	$(PYTHON) benchmarks/run_benchmarks.py

soak:
	$(PYTHON) -m repro.workloads.churn

bench-experiments:
	$(PYTHON) -m pytest benchmarks/bench_*.py --benchmark-only -s
