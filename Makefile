PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-experiments soak soak_cluster soak_fabric soak_queries soak_push soak_async soak_telemetry matrix docs_check lint determinism

test:
	$(PYTHON) -m pytest -q

bench:
	$(PYTHON) benchmarks/run_benchmarks.py

soak:
	$(PYTHON) -m repro.workloads.churn

soak_cluster:
	$(PYTHON) -m repro.workloads.cluster

soak_fabric:
	$(PYTHON) -m repro.workloads.fabric

soak_queries:
	$(PYTHON) -m repro.workloads.queryload

soak_push:
	$(PYTHON) -m repro.workloads.queryload push

soak_async:
	$(PYTHON) -m repro.workloads.decision_core

soak_telemetry:
	$(PYTHON) -m repro.workloads.telemetry

matrix:
	$(PYTHON) -m repro.workloads.experiment

docs_check:
	$(PYTHON) tools/check_docs.py

lint:
	$(PYTHON) tools/analysis/run_lint.py

determinism:
	$(PYTHON) -m repro.workloads.determinism

bench-experiments:
	$(PYTHON) -m pytest benchmarks/bench_*.py --benchmark-only -s
