PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-experiments

test:
	$(PYTHON) -m pytest -q

bench:
	$(PYTHON) benchmarks/run_benchmarks.py

bench-experiments:
	$(PYTHON) -m pytest benchmarks/bench_*.py --benchmark-only -s
